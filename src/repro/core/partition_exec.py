"""Partitioned scatter-gather execution of the exact vectorized scan.

The paper's bound-based early termination reasons about *one* corpus: stop
reading when no unseen item can beat the current top-k.  The same argument
generalises per partition — an item shard whose admissible score upper
bound cannot reach the k-th best provable lower bound loses wholesale and
is never scanned.  That is exactly the pruning a scatter-gather layer
needs: queries fan out over :class:`~repro.storage.partitioned.CorpusPartitions`
item shards, low-bound shards are skipped, surviving shards run their
block scan (optionally on a worker pool), and the partial top-ks merge
into one ranking.

The executor is a *serving* component, so everything that depends only on
the tag combination — the candidate block, per-tag position maps, the
textual component, the scalar-equivalent base access charges, the shard
split, and the cluster-bound score uppers — is computed once per tag set
and reused across queries (invalidated by the endorser index's version
token, exactly like :meth:`ScoringModel.candidate_block`).  Zipf-skewed
serving traffic hits the same hot tag sets over and over; the
single-partition :class:`~repro.core.topk.exact.ExactBaseline` recomputes
all of it per query.

The contract is the repo-wide one: results are **bit-identical** to the
single-partition exact scan — same rankings, same scores, same access
accounting.  That falls out of three facts:

* per-item scores depend only on that item's posting/endorser segments,
  and the subset gather (:func:`_subset_social_mass`) reduces each segment
  in the same element order as the full ``reduceat``;
* access charges are defined by what the scalar path *would* do; they are
  cheap integer arithmetic over the whole candidate block and are computed
  globally, so pruning never changes them;
* every cut — whole shards and individual items — drops a candidate only
  when its admissible score bound is *strictly* below a provable lower
  bound on the k-th best score, so nothing skipped could have placed, ties
  included.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..config import EngineConfig
from ..obs import trace as obs_trace
from ..obs.trace import NULL_SPAN
from ..proximity.base import ProximityMeasure
from ..storage.dataset import Dataset
from ..storage.partitioned import CorpusPartitions
from .accounting import AccessAccountant
from .batch import _subset_social_mass
from .query import Query, QueryBudget, QueryResult, ScoredItem
from .scoring import ScoringModel
from .topk.exact import select_topk


def _no_span(name: str, **attributes: object):
    """Span factory of the untraced path: always the shared no-op span."""
    return NULL_SPAN


@dataclass
class PartitionExecStatistics:
    """Serving counters of a :class:`PartitionedExecutor`."""

    #: Queries answered through the scatter-gather path.
    searches: int = 0
    #: Shards whose block scan actually ran.
    partitions_scanned: int = 0
    #: Shards skipped because their admissible bound lost to the threshold.
    partitions_pruned: int = 0
    #: Individual candidates dropped before their social gather inside
    #: scanned shards (the item-level form of the same bound cut).
    candidates_pruned: int = 0
    #: Individual candidates whose exact score was actually computed.
    candidates_scanned: int = 0
    #: Searches whose surviving shards ran on the worker pool.
    parallel_searches: int = 0
    #: Searches that carried a per-query budget (the anytime path).
    anytime_searches: int = 0
    #: Budgeted searches that actually stopped before exhausting their
    #: surviving shards (the rest ran to completion and are exact).
    budget_stops: int = 0
    #: Surviving shards left unscanned because the budget ran out.
    partitions_skipped_budget: int = 0

    def to_dict(self) -> Dict[str, float]:
        return {
            "searches": self.searches,
            "partitions_scanned": self.partitions_scanned,
            "partitions_pruned": self.partitions_pruned,
            "candidates_pruned": self.candidates_pruned,
            "candidates_scanned": self.candidates_scanned,
            "parallel_searches": self.parallel_searches,
            "anytime_searches": self.anytime_searches,
            "budget_stops": self.budget_stops,
            "partitions_skipped_budget": self.partitions_skipped_budget,
        }


@dataclass(frozen=True)
class PartitionBounds:
    """The bound phase of one query, before any social gather runs."""

    frontier_bound: float
    prune_threshold: Optional[float]
    #: Per-shard dicts: ``partition``, ``candidates``, ``upper_bound``,
    #: ``pruned`` (the planner turns these into ``PartitionPreview``s).
    partitions: Tuple[Dict[str, object], ...] = field(default_factory=tuple)


class _TagContext:
    """One tag's slice of a tag-set context (all arrays read-only)."""

    __slots__ = ("normaliser", "bundle", "positions", "found", "frequencies",
                 "ntf", "all_found")

    def __init__(self, normaliser, bundle, positions, found, frequencies,
                 ntf) -> None:
        self.normaliser = normaliser
        self.bundle = bundle
        self.positions = positions
        self.found = found
        self.frequencies = frequencies
        self.ntf = ntf
        #: Every candidate carries the tag (single-tag blocks, mostly):
        #: scans skip the found-mask gather entirely.
        self.all_found = bool(found.all())


class _ScatterPlan:
    """A (tag set, cluster, k)-level scatter layout, shared across queries.

    Everything here depends only on the static threshold and the cluster's
    admissible bounds — not on the seeker — so hot tag sets pay the probe
    selection, shard ranking and probe-exclusion masking exactly once.
    """

    __slots__ = ("upper_ref", "static_threshold", "probe", "residual_uppers",
                 "residual_partitions", "residual_union", "residual_offsets",
                 "pruned_static")

    def __init__(self, upper_ref, static_threshold, probe, residual_uppers,
                 residual_partitions, residual_union, residual_offsets,
                 pruned_static) -> None:
        #: The per-item bound array this plan was derived from (identity
        #: check on reuse — a repaired cluster bound produces a new array).
        self.upper_ref = upper_ref
        self.static_threshold = static_threshold
        #: Highest-bound candidate positions scored first, or ``None``.
        self.probe = probe
        #: Statically surviving shards' upper bounds, descending.
        self.residual_uppers = residual_uppers
        #: Those shards' partition ids, in the same order (per-shard trace
        #: spans name the shard they scanned).
        self.residual_partitions = residual_partitions
        #: Those shards' candidate positions (minus the probe), concatenated
        #: in the same descending-bound order.  A tightened threshold always
        #: prunes a *suffix* of the bound-desc order, so the per-query
        #: survivor set is a prefix slice — no concatenation on the hot path.
        self.residual_union = residual_union
        #: ``residual_offsets[i]`` ends shard ``i``'s slice of the union.
        self.residual_offsets = residual_offsets
        #: Shards already ruled out by the static threshold.
        self.pruned_static = pruned_static


class _TagSetContext:
    """Query-independent artifacts of one tag combination, shared across
    queries: candidate block, per-tag maps, textual component, base charges,
    shard split, and memoised per-cluster score uppers."""

    __slots__ = ("tags", "candidates", "contexts", "textual", "base_charges",
                 "sequential", "m", "shards", "upper_cache", "threshold_cache",
                 "scatter_cache")

    def __init__(self, tags, candidates, contexts, textual, base_charges,
                 sequential, m, shards) -> None:
        self.tags = tags
        self.candidates = candidates
        self.contexts = contexts
        self.textual = textual
        self.base_charges = base_charges
        self.sequential = sequential
        self.m = m
        self.shards = shards
        #: ``id(bound_vector) -> (bound_vector, upper_items)``.
        self.upper_cache: Dict[int, Tuple[object, np.ndarray]] = {}
        #: ``k -> static textual-only prune threshold`` (or ``None``).
        self.threshold_cache: Dict[int, Optional[float]] = {}
        #: ``(id(upper_items), k) -> _ScatterPlan``.
        self.scatter_cache: Dict[Tuple[int, int], _ScatterPlan] = {}


class PartitionedExecutor:
    """Scatter-gather driver for the exact vectorized scan.

    Parameters
    ----------
    dataset / proximity / config:
        The same triple every :class:`~repro.core.topk.base.TopKAlgorithm`
        binds; the executor owns its :class:`ScoringModel` so candidate-block
        memoisation behaves like any other algorithm instance's.
    partitions:
        The corpus layout queries scatter over.
    workers:
        Worker threads for the scatter phase; defaults to
        ``min(num_partitions, cpu count)``.  1 forces inline (sequential)
        scans, which also enables the fully progressive threshold.
    label:
        Algorithm label stamped on unbudgeted results.  ``"exact"`` for the
        standard executor; the engine's landmark-sketch executor passes
        ``"landmark"``, which also marks results as approximate
        (``is_exact=False``, no error bound) — the sketch's admissible
        under-estimates change scores, not just scan order.
    """

    #: Total surviving candidates below which the scatter runs inline: a
    #: thread dispatch costs more than a micro-scan, so the pool only pays
    #: off on big blocks (and only on multi-core hosts).
    PARALLEL_MIN_CANDIDATES = 4096

    def __init__(self, dataset: Dataset, proximity: ProximityMeasure,
                 config: EngineConfig, partitions: CorpusPartitions,
                 workers: Optional[int] = None,
                 label: str = "exact") -> None:
        import os

        self._dataset = dataset
        self._proximity = proximity
        self._config = config
        self._partitions = partitions
        self._label = label
        self._approximate = label != "exact"
        self._scoring = ScoringModel(dataset, proximity, config.scoring)
        if workers is None:
            workers = min(partitions.num_partitions, os.cpu_count() or 1)
        self._workers = max(1, int(workers))
        self._pool: Optional[ThreadPoolExecutor] = None  # guarded-by: _lock
        self._lock = threading.Lock()
        # Tag-set contexts keyed like ScoringModel's candidate cache: the
        # endorser index object plus its delta version.
        self._tagsets: Dict[Tuple[str, ...], _TagSetContext] = {}  # guarded-by: _lock
        self._tagset_token: Optional[Tuple[object, int]] = None  # guarded-by: _lock
        # Bound-weighted endorser masses per (cluster bound vector, tag),
        # shared across every seeker of the cluster and across queries —
        # the cross-query analogue of core.batch's per-group cache.  Keys
        # hold the bound array and bundle by reference, so a shard repair
        # (new bound array) or a delta merge (new bundle) misses cleanly.
        self._bound_mass_cache: Dict[Tuple[int, str],  # guarded-by: _lock
                                     Tuple[object, object, np.ndarray]] = {}
        self.statistics = PartitionExecStatistics()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def num_partitions(self) -> int:
        """Number of item shards in the layout."""
        return self._partitions.num_partitions

    @property
    def partitions(self) -> CorpusPartitions:
        """The corpus layout."""
        return self._partitions

    def to_dict(self) -> Dict[str, object]:
        """Stats-endpoint view: layout plus serving counters."""
        return dict(self._partitions.to_dict(),
                    workers=self._workers,
                    label=self._label,
                    **self.statistics.to_dict())

    # ------------------------------------------------------------------ #
    # Tag-set context (shared across queries)
    # ------------------------------------------------------------------ #

    def _tagset(self, tags: Tuple[str, ...]) -> _TagSetContext:
        """The cached tag-set context, rebuilt when the index moves on."""
        index = self._dataset.endorser_index
        token = (index, getattr(index, "version", 0))
        with self._lock:
            current = self._tagset_token
            if current is None or current[0] is not token[0] \
                    or current[1] != token[1]:
                self._tagsets.clear()
                self._tagset_token = token
            context = self._tagsets.get(tags)
        if context is not None:
            return context
        context = self._build_tagset(tags)
        with self._lock:
            if self._tagset_token == token or (
                    self._tagset_token is not None
                    and self._tagset_token[0] is token[0]
                    and self._tagset_token[1] == token[1]):
                if len(self._tagsets) >= 1024:
                    self._tagsets.clear()
                self._tagsets[tags] = context
        return context

    def _build_tagset(self, tags: Tuple[str, ...]) -> _TagSetContext:
        candidates = self._scoring.candidate_block(tags)
        n = int(candidates.shape[0])
        m = float(len(tags)) if tags else 1.0
        contexts: List[Optional[_TagContext]] = []
        textual_total = np.zeros(n, dtype=np.float64)
        base_charges = np.zeros(n, dtype=np.int64)
        for tag in tags:
            normaliser = self._scoring.normaliser(tag)
            bundle = self._dataset.endorser_index.for_tag(tag)
            if bundle is None or len(bundle) == 0:
                base_charges += 1  # the frequency lookup still happens
                contexts.append(None)
                continue
            if candidates is bundle.item_ids:
                # Single-tag fast path: the candidate block IS the tag's
                # item array, so every item maps to its own position.
                positions = np.arange(n, dtype=np.int64)
                found = np.ones(n, dtype=bool)
                frequencies = bundle.frequencies
            else:
                positions, found = bundle.positions_of(candidates)
                frequencies = np.where(found, bundle.frequencies[positions], 0)
            ntf = frequencies / normaliser
            textual_total += ntf
            base_charges += 1 + frequencies
            contexts.append(_TagContext(normaliser, bundle, positions, found,
                                        frequencies, ntf))
        sequential = sum(self._dataset.inverted_index.list_length(tag)
                         for tag in tags)
        shards = self._shard_indices(candidates)
        return _TagSetContext(tags, candidates, contexts, textual_total / m,
                              base_charges, sequential, m, shards)

    def _shard_indices(self, candidates: np.ndarray) -> List[np.ndarray]:
        """Candidate positions per partition (ascending within each shard)."""
        parts = self._partitions.partition_of_items(candidates)
        return [np.nonzero(parts == p)[0]
                for p in range(self.num_partitions)]

    # ------------------------------------------------------------------ #
    # Bounds
    # ------------------------------------------------------------------ #

    def _cluster_bound(self, seeker: int) -> Optional[np.ndarray]:
        """The seeker's materialized cluster bound vector, when served."""
        upper_bound_of = getattr(self._proximity, "upper_bound_array", None)
        if upper_bound_of is None:
            return None
        return upper_bound_of(seeker)

    def _bound_masses(self, tag: str, bundle, bound_vector: np.ndarray
                      ) -> np.ndarray:
        """Bound-weighted endorser mass of every item of ``tag``, memoised.

        ``bound_vector`` is a materialized cluster bound
        (:meth:`~repro.proximity.materialized.MaterializedProximity.upper_bound_array`):
        an admissible per-user cap on the proximity of *any* cluster member.
        The gather runs once per (cluster, tag) and is reused by every
        member's every query until the shard is repaired or the tag's CSR
        bundle is swapped by a delta merge.
        """
        key = (id(bound_vector), tag)
        entry = self._bound_mass_cache.get(key)
        if entry is not None and entry[0] is bound_vector \
                and entry[1] is bundle:
            return entry[2]
        masses = bundle.social_mass(bound_vector)
        with self._lock:
            if len(self._bound_mass_cache) >= 4096:
                self._bound_mass_cache.clear()
            self._bound_mass_cache[key] = (bound_vector, bundle, masses)
        return masses

    def _upper_items(self, context: _TagSetContext,
                     bound_vector: Optional[np.ndarray],
                     scalar_bound: float) -> np.ndarray:
        """Per-item admissible score bounds for one seeker's query.

        The bound is the paper's social-mass cap applied item-wise.  With a
        materialized cluster ``bound_vector`` the tag-``t`` mass of item
        ``i`` is at most ``Σ_{v ∈ taggers(i,t)} bound_vector[v]`` —
        endorsers no cluster member reaches contribute nothing, so remote
        shards' bounds collapse even for globally popular items — and the
        result is memoised per cluster on the tag-set context.  Without one
        it degrades to the scalar per-seeker cap ``b·tf(i,t)``.  Either way
        ``u_i = (1/m)·Σ_t [α·ntf + (1−α)·min(1, mass_bound/Z_t)]``
        dominates the exact blended score, and a shard's upper bound is the
        max of ``u_i`` over its candidates.
        """
        alpha = self._config.scoring.alpha
        if bound_vector is not None:
            cached = context.upper_cache.get(id(bound_vector))
            if cached is not None and cached[0] is bound_vector:
                return cached[1]
            social_total = np.zeros(context.candidates.shape[0],
                                    dtype=np.float64)
            for tag_context in context.contexts:
                if tag_context is None:
                    continue
                masses = self._bound_masses(tag_context.bundle.tag,
                                            tag_context.bundle, bound_vector)
                social_total += np.minimum(
                    1.0, np.where(tag_context.found,
                                  masses[tag_context.positions], 0.0)
                    / tag_context.normaliser)
            upper = alpha * context.textual \
                + (1.0 - alpha) * (social_total / context.m)
            if len(context.upper_cache) >= 64:
                context.upper_cache.clear()
            context.upper_cache[id(bound_vector)] = (bound_vector, upper)
            return upper
        social_total = np.zeros(context.candidates.shape[0], dtype=np.float64)
        for tag_context in context.contexts:
            if tag_context is None:
                continue
            social_total += np.minimum(1.0, scalar_bound * tag_context.ntf)
        return alpha * context.textual + (1.0 - alpha) * (social_total / context.m)

    def _static_threshold(self, context: _TagSetContext, k: int
                          ) -> Optional[float]:
        """The k-th largest textual-only lower bound, or ``None`` for "no pruning".

        At least ``k`` items score at least this much (social mass is
        non-negative), so a shard strictly below it cannot place an item —
        not even a tie, which keeps the merged ranking bit-identical.
        """
        if k in context.threshold_cache:
            return context.threshold_cache[k]
        n = int(context.textual.shape[0])
        if not 0 < k < n:
            threshold: Optional[float] = None
        else:
            lower = self._config.scoring.alpha * context.textual
            threshold = float(np.partition(lower, n - k)[n - k])
        if len(context.threshold_cache) >= 64:
            context.threshold_cache.clear()
        context.threshold_cache[k] = threshold
        return threshold

    def _scatter_plan(self, context: _TagSetContext, upper_items: np.ndarray,
                      k: int, cacheable: bool) -> _ScatterPlan:
        """The scatter layout for one (tag set, bound array, k) triple.

        Cacheable whenever ``upper_items`` itself is cached (cluster-bound
        path): the probe selection, shard ranking and probe-exclusion
        masking depend only on bounds and the static threshold, so repeat
        queries from the same cluster skip all of it.  Seeker-scalar bound
        arrays are ephemeral; their plans are built per query.
        """
        key = (id(upper_items), k)
        if cacheable:
            plan = context.scatter_cache.get(key)
            if plan is not None and plan.upper_ref is upper_items:
                return plan
        threshold = self._static_threshold(context, k)
        n = int(context.candidates.shape[0])
        ranked: List[Tuple[float, int, np.ndarray]] = []
        pruned_static = 0
        for partition, shard in enumerate(context.shards):
            if not shard.shape[0]:
                continue
            upper = float(upper_items[shard].max())
            if threshold is not None and upper < threshold:
                pruned_static += 1
                continue
            ranked.append((upper, partition, shard))
        ranked.sort(key=lambda entry: (-entry[0], entry[1]))
        probe: Optional[np.ndarray] = None
        probe_mask: Optional[np.ndarray] = None
        probe_size = max(32, 4 * k)
        viable_total = sum(int(shard.shape[0]) for _u, _p, shard in ranked)
        if 0 < k < n and viable_total > probe_size and ranked:
            viable = (ranked[0][2] if len(ranked) == 1 else
                      np.concatenate([shard for _u, _p, shard in ranked]))
            cut = int(viable.shape[0]) - probe_size
            probe = viable[np.argpartition(upper_items[viable], cut)[cut:]]
            probe_mask = np.zeros(n, dtype=bool)
            probe_mask[probe] = True
        residual_uppers: List[float] = []
        residual_partitions: List[int] = []
        residual_parts: List[np.ndarray] = []
        offsets: List[int] = []
        total = 0
        for upper, partition, shard in ranked:
            residual = shard if probe_mask is None \
                else shard[~probe_mask[shard]]
            residual_uppers.append(upper)
            residual_partitions.append(partition)
            residual_parts.append(residual)
            total += int(residual.shape[0])
            offsets.append(total)
        residual_union = (np.concatenate(residual_parts) if residual_parts
                          else np.zeros(0, dtype=np.int64))
        plan = _ScatterPlan(upper_items, threshold, probe, residual_uppers,
                            residual_partitions, residual_union, offsets,
                            pruned_static)
        if cacheable:
            if len(context.scatter_cache) >= 64:
                context.scatter_cache.clear()
            context.scatter_cache[key] = plan
        return plan

    def preview(self, query: Query) -> PartitionBounds:
        """The bound phase only — what ``repro explain`` prints.

        Never computes a proximity vector: the scalar cap comes from
        :meth:`ProximityMeasure.frontier_bound` (exact for shard-served and
        warm-cached seekers, degrading to the admissible 1.0 otherwise) and
        the cluster bound vector is a dictionary lookup, so explaining a
        query costs index arithmetic, not a PPR power iteration.  The
        ``pruned`` verdicts use the static textual-only threshold;
        execution can prune *more* once scanned shards supply exact scores
        as progressive thresholds.
        """
        self._dataset.graph.validate_user(query.seeker)
        bound = self._proximity.frontier_bound(query.seeker)
        bound = 1.0 if bound is None else min(1.0, max(0.0, float(bound)))
        context = self._tagset(query.tags)
        upper_items = self._upper_items(context,
                                        self._cluster_bound(query.seeker),
                                        bound)
        threshold = self._static_threshold(context, query.k)
        entries: List[Dict[str, object]] = []
        for partition, shard in enumerate(context.shards):
            upper = float(upper_items[shard].max()) if shard.shape[0] else 0.0
            pruned = bool(shard.shape[0]) and threshold is not None \
                and upper < threshold
            entries.append({
                "partition": partition,
                "candidates": int(shard.shape[0]),
                "upper_bound": upper,
                "pruned": pruned,
            })
        return PartitionBounds(frontier_bound=bound, prune_threshold=threshold,
                               partitions=tuple(entries))

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def search(self, query: Query,
               budget: Optional[QueryBudget] = None) -> QueryResult:
        """Answer ``query`` by partitioned scatter-gather (exact semantics).

        When a tracer is installed and the request is sampled, the scatter
        sweep scans shard-by-shard under per-shard ``shard.scan`` spans
        (items in / pruned / scanned per shard) instead of the concatenated
        union slice.  Per-item scores are segment-independent, the sweep
        threshold is fixed, and the top-k fold is associative, so both
        orders produce bit-identical results — the traced path trades one
        concatenated scan for visibility, never for correctness.

        With a ``budget`` (explicit, or carried by the query) the sweep
        runs the same shard-by-shard order but may stop between shards once
        the deadline or scanned-items cap is hit, returning best-so-far
        results plus an admissible error bound; a budget generous enough to
        scan every surviving shard returns results bit-identical to the
        unbudgeted path (same fixed threshold, same associative fold).
        """
        if budget is None:
            budget = query.budget
        started_at = time.perf_counter()
        tracer = obs_trace.get_tracer()
        make_span = tracer.span if tracer is not None else _no_span
        with make_span("executor.search",
                       partitions=self.num_partitions) as root:
            result = self._search(query, started_at, tracer, make_span, root,
                                  budget)
        return result

    def _search(self, query: Query, started_at: float, tracer, make_span,
                root, budget: Optional[QueryBudget] = None) -> QueryResult:
        self._dataset.graph.validate_user(query.seeker)
        seeker = query.seeker
        alpha = self._config.scoring.alpha
        accountant = AccessAccountant()

        with make_span("proximity.vector"):
            proximity = self._scoring.proximity_vector_array(seeker)
        accountant.charge_user_visit(int(np.count_nonzero(proximity)))

        with make_span("tagset.context") as tagset_span:
            context = self._tagset(query.tags)
            candidates = context.candidates
            n = int(candidates.shape[0])
            tagset_span.set(candidates=n)
        accountant.charge_sequential(context.sequential)
        accountant.charge_candidate(n)

        # Scalar-equivalent random-access charges over the WHOLE candidate
        # block: cheap integer arithmetic, deliberately not partitioned so
        # pruning can never change the reported accounting.  The base
        # charges are tag-set state; only the seeker's own endorsements
        # need subtracting per query.
        with make_span("accounting.charges"):
            charges = context.base_charges
            if n and not self._config.scoring.include_seeker:
                adjust: Optional[np.ndarray] = None
                for tag_context in context.contexts:
                    if tag_context is None \
                            or not tag_context.bundle.seeker_count(seeker):
                        continue
                    seeker_flags = tag_context.bundle.seeker_flags(seeker)
                    term = np.where(
                        tag_context.found,
                        seeker_flags[tag_context.positions].astype(np.int64), 0)
                    adjust = term if adjust is None else adjust + term
                if adjust is not None:
                    charges = charges - adjust
            accountant.charge_random(int(charges.sum()))

        # The dense vector is already in hand, so its exact maximum is the
        # scalar cap; the materialized cluster bound (when the seeker is
        # shard-served) supplies the per-user mass cap.
        with make_span("bounds.compute") as bounds_span:
            cluster_bound = self._cluster_bound(seeker)
            scalar_bound = float(proximity.max()) if proximity.shape[0] else 0.0
            upper_items = self._upper_items(context, cluster_bound,
                                            min(1.0, max(0.0, scalar_bound)))
            plan = self._scatter_plan(context, upper_items, query.k,
                                      cacheable=cluster_bound is not None)
            bounds_span.set(
                bound_path="cluster" if cluster_bound is not None else "scalar",
                pruned_static=plan.pruned_static)

        # Scatter with progressive pruning — the paper's bound-based early
        # termination at shard granularity.  The probe scores the
        # highest-bound handful of candidates across the statically
        # surviving shards — bound order correlates with score order, so
        # its exact k-th score is a near-optimal progressive threshold
        # after touching a few dozen items.  The sweep then re-prunes
        # whole shards against the tightened threshold and scans what is
        # left of them (probed items excluded, so nothing is scored twice),
        # with item-level filtering inside the scan doing the rest.  Every
        # cut is a strict inequality on admissible bounds, so nothing
        # skipped could have placed, ties included, and the merged ranking
        # is bit-identical to the full scan.
        threshold = plan.static_threshold
        pruned = plan.pruned_static
        scanned = 0
        stop_index: Optional[int] = None
        # Inline waves skip the local top-k select — the fold into the
        # running global top-k selects anyway; pool scans keep it so each
        # worker hands back at most k rows.
        scan = lambda shard, cut: self._scan_shard(  # noqa: E731
            shard, query.k, cut, context, upper_items, proximity, alpha,
            select_local=False)
        merged = (np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.float64),
                  np.zeros(0, dtype=np.float64))
        with make_span("scatter.sweep") as sweep_span:
            if plan.probe is not None:
                with make_span("probe.scan") as probe_span:
                    partial = self._scan_shard(
                        plan.probe, query.k, threshold, context, upper_items,
                        proximity, alpha, select_local=False, span=probe_span)
                merged = self._merge_topk(merged, partial, candidates, query.k)
                threshold = self._tighten(threshold, merged, query.k, n)
            # The tightened threshold always cuts a suffix of the bound-desc
            # shard order, so the surviving residuals are one prefix slice
            # of the precomputed union.
            keep = len(plan.residual_uppers)
            if threshold is not None:
                while keep and plan.residual_uppers[keep - 1] < threshold:
                    keep -= 1
            pruned += len(plan.residual_uppers) - keep
            scanned = keep
            if keep:
                end = plan.residual_offsets[keep - 1]
                union = plan.residual_union[:end]
                if union.shape[0]:
                    pool_worthy = (budget is None and self._workers > 1
                                   and keep > 1
                                   and end >= self.PARALLEL_MIN_CANDIDATES)
                    starts = [0] + plan.residual_offsets
                    stops = plan.residual_offsets[:keep]
                    if budget is not None:
                        merged, stop_index = self._sweep_budgeted(
                            plan, starts, stops, threshold, merged, candidates,
                            query, context, upper_items, proximity, alpha,
                            make_span, budget, started_at, keep)
                        if stop_index is not None:
                            scanned = stop_index
                    elif pool_worthy:
                        merged = self._sweep_pool(
                            plan, starts, stops, threshold, merged, candidates,
                            query, context, upper_items, proximity, alpha,
                            tracer, root)
                    elif root:
                        merged = self._sweep_traced(
                            plan, starts, stops, threshold, merged, candidates,
                            query, context, upper_items, proximity, alpha,
                            make_span)
                    else:
                        merged = self._merge_topk(
                            merged, scan(union, threshold), candidates,
                            query.k)
            sweep_span.set(partitions_scanned=scanned,
                           partitions_pruned=pruned,
                           budget_stop=stop_index is not None)

        with make_span("gather.materialize"):
            top, top_scores, top_social = merged
            accountant.charge_random(int(charges[top].sum()))

            items = [
                ScoredItem(item_id=item_id, score=score, textual=textual,
                           social=social)
                for item_id, score, textual, social in zip(
                    candidates[top].tolist(), top_scores.tolist(),  # lint: allow(hot-path-materialisation) -- k-sized top-k slices
                    context.textual[top].tolist(), top_social.tolist())  # lint: allow(hot-path-materialisation) -- k-sized top-k slices
            ]
        # The admissible gap of a budget-stopped sweep.  Surviving shards
        # are ordered by descending bound, so the first unscanned shard's
        # bound dominates every unscanned candidate — including candidates
        # cut by the (weaker) threshold at shard or item level — and every
        # scanned non-returned candidate scores at most the returned k-th.
        # Hence the true k-th exact score never exceeds
        # ``returned k-th + error_bound``.
        skipped = (keep - stop_index) if stop_index is not None else 0
        error_bound = 0.0
        if stop_index is not None:
            kth = (float(top_scores[query.k - 1])
                   if top_scores.shape[0] >= query.k else 0.0)
            error_bound = max(
                0.0, float(plan.residual_uppers[stop_index]) - kth)
        is_exact = not self._approximate and error_bound <= 0.0
        with self._lock:
            self.statistics.searches += 1
            self.statistics.partitions_scanned += scanned
            self.statistics.partitions_pruned += pruned
            if budget is not None:
                self.statistics.anytime_searches += 1
                if stop_index is not None:
                    self.statistics.budget_stops += 1
                    self.statistics.partitions_skipped_budget += skipped
        root.set(candidates=n, partitions_scanned=scanned,
                 partitions_pruned=pruned)
        if budget is not None:
            root.set(budget_stop=stop_index is not None,
                     partitions_skipped_budget=skipped,
                     error_bound=error_bound)
        return QueryResult(
            query=query,
            items=items,
            algorithm="anytime" if budget is not None else self._label,
            latency_seconds=time.perf_counter() - started_at,
            accounting=accountant,
            terminated_early=stop_index is not None,
            is_exact=is_exact,
            error_bound=None if self._approximate else error_bound,
        )

    def _sweep_traced(self, plan: _ScatterPlan, starts, stops,
                      threshold: Optional[float], merged, candidates,
                      query: Query, context: _TagSetContext, upper_items,
                      proximity, alpha: float, make_span):
        """The inline sweep, shard-by-shard under per-shard spans.

        Same fixed threshold and same fold rule as the union scan, so the
        merged top-k (and the pruned/scanned counts, which are per-item
        comparisons either way) are bit-identical.
        """
        for index, (start, stop) in enumerate(zip(starts, stops)):
            if stop <= start:
                continue
            with make_span("shard.scan",
                           partition=plan.residual_partitions[index],
                           upper_bound=plan.residual_uppers[index]) as shard_span:
                partial = self._scan_shard(
                    plan.residual_union[start:stop], query.k, threshold,
                    context, upper_items, proximity, alpha,
                    select_local=False, span=shard_span)
            merged = self._merge_topk(merged, partial, candidates, query.k)
        return merged

    def _sweep_budgeted(self, plan: _ScatterPlan, starts, stops,
                        threshold: Optional[float], merged, candidates,
                        query: Query, context: _TagSetContext, upper_items,
                        proximity, alpha: float, make_span,
                        budget: QueryBudget, started_at: float,
                        keep: int) -> Tuple[object, Optional[int]]:
        """The anytime sweep: shard-by-shard with budget checks in between.

        Identical to :meth:`_sweep_traced` — same fixed post-probe
        threshold, same associative fold, same shard order — except the
        loop may stop *between* shards once the deadline passes or the
        scanned-items cap is reached.  Returns ``(merged, stop_index)``
        where ``stop_index`` is the bound-descending index of the first
        unscanned surviving shard (``None`` when the budget covered the
        whole sweep, in which case the result is bit-identical to the
        unbudgeted path).  The probe's items count against the cap, so a
        zero cap degrades to probe-only results.
        """
        deadline = (None if budget.deadline_ms is None
                    else started_at + budget.deadline_ms / 1000.0)
        scanned_items = int(plan.probe.shape[0]) if plan.probe is not None else 0
        for index in range(keep):
            start, stop = starts[index], stops[index]
            if stop <= start:
                continue
            over_items = (budget.max_scanned is not None
                          and scanned_items >= budget.max_scanned)
            over_time = (deadline is not None
                         and time.perf_counter() >= deadline)
            if over_items or over_time:
                return merged, index
            with make_span("shard.scan",
                           partition=plan.residual_partitions[index],
                           upper_bound=plan.residual_uppers[index]) as shard_span:
                partial = self._scan_shard(
                    plan.residual_union[start:stop], query.k, threshold,
                    context, upper_items, proximity, alpha,
                    select_local=False, span=shard_span)
            merged = self._merge_topk(merged, partial, candidates, query.k)
            scanned_items += stop - start
        return merged, None

    def _sweep_pool(self, plan: _ScatterPlan, starts, stops,
                    threshold: Optional[float], merged, candidates,
                    query: Query, context: _TagSetContext, upper_items,
                    proximity, alpha: float, tracer, root):
        """The pool sweep; traced shards get spans parented explicitly
        (worker threads have no ambient span context)."""
        if root and tracer is not None:
            parent = tracer.current()

            def pool_scan(entry, cut):
                shard_slice, partition = entry
                with tracer.span("shard.scan", parent=parent,
                                 partition=partition, pool=True) as shard_span:
                    return self._scan_shard(
                        shard_slice, query.k, cut, context, upper_items,
                        proximity, alpha, span=shard_span)

            shards = [(plan.residual_union[start:stop],
                       plan.residual_partitions[index])
                      for index, (start, stop) in enumerate(zip(starts, stops))
                      if stop > start]
        else:
            pool_scan = lambda shard, cut: self._scan_shard(  # noqa: E731
                shard, query.k, cut, context, upper_items, proximity, alpha)
            shards = [plan.residual_union[start:stop]
                      for start, stop in zip(starts, stops)
                      if stop > start]
        for partial in self._scatter(shards, threshold, pool_scan):
            merged = self._merge_topk(merged, partial, candidates, query.k)
        return merged

    def _scatter(self, survivors, threshold: Optional[float], scan):
        """Run the surviving shards' scans on the pool (phase-1 threshold)."""
        if not survivors:
            return []
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self._workers,
                    thread_name_prefix="repro-scatter")
            self.statistics.parallel_searches += 1
        futures = [self._pool.submit(scan, shard, threshold)
                   for shard in survivors]
        return [future.result() for future in futures]

    @staticmethod
    def _merge_topk(merged, partial, candidates: np.ndarray, k: int):
        """Fold one shard's partial top-k into the running global top-k.

        Reselecting over the concatenation under the same (score desc,
        item id asc) rule is identical to one global selection, because
        every global top-k item survives its shard's local top-k and every
        fold keeps the best ``k``.
        """
        if not merged[0].shape[0]:
            positions, scores, social = partial
        else:
            positions = np.concatenate([merged[0], partial[0]])
            scores = np.concatenate([merged[1], partial[1]])
            social = np.concatenate([merged[2], partial[2]])
        best = select_topk(candidates[positions], scores, k)
        return positions[best], scores[best], social[best]

    @staticmethod
    def _tighten(threshold: Optional[float], merged, k: int,
                 n: int) -> Optional[float]:
        """Raise the threshold to the merged k-th exact score, when held.

        ``merged`` is ordered best-first, so once it holds ``k`` items its
        last score is an exact lower bound at least ``k`` items reach —
        admissible for the same strict-inequality cut as the static
        threshold (only applied while pruning is legal, i.e. ``k < n``).
        """
        if not 0 < k < n or merged[1].shape[0] < k:
            return threshold
        progressive = float(merged[1][k - 1])
        if threshold is None or progressive > threshold:
            return progressive
        return threshold

    def _scan_shard(self, shard: np.ndarray, k: int,
                    threshold: Optional[float], context: _TagSetContext,
                    upper_items: np.ndarray, proximity: np.ndarray,
                    alpha: float, select_local: bool = True,
                    span=NULL_SPAN
                    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Exact scores + local top-k of one shard's viable candidates.

        Candidates whose admissible per-item bound falls strictly below the
        threshold are dropped *before* the social gather — the item-level
        form of the shard cut, mirroring the batched executor's candidate
        pruning — so a mostly-beaten shard pays for its handful of
        contenders, not its whole block.  Returns ``(positions, scores,
        social)`` with ``positions`` indexing the global candidate block.
        The arithmetic replays :meth:`ScoringModel.score_block` per segment
        — same per-tag order, same per-segment reduction order — so scores
        are bit-identical to the single-partition scan.
        """
        items_in = int(shard.shape[0])
        if threshold is not None:
            keep = np.nonzero(upper_items[shard] >= threshold)[0]
            if keep.shape[0] < shard.shape[0]:
                shard = shard[keep]
        count = int(shard.shape[0])
        with self._lock:
            self.statistics.candidates_pruned += items_in - count
            self.statistics.candidates_scanned += count
        span.set(items_in=items_in, items_pruned=items_in - count,
                 items_scanned=count)
        social_total = np.zeros(count, dtype=np.float64)
        for tag_context in context.contexts:
            if tag_context is None:
                continue
            if tag_context.all_found:
                if count:
                    mass = _subset_social_mass(
                        tag_context.bundle, proximity,
                        tag_context.positions[shard])
                    social_total += np.minimum(
                        1.0, mass / tag_context.normaliser)
                continue
            found = tag_context.found[shard]
            hit = np.nonzero(found)[0]
            mass = np.zeros(count, dtype=np.float64)
            if hit.shape[0]:
                mass[hit] = _subset_social_mass(
                    tag_context.bundle, proximity,
                    tag_context.positions[shard][hit])
            social_total += np.minimum(
                1.0, np.where(found, mass, 0.0) / tag_context.normaliser)
        social = social_total / context.m
        scores = alpha * context.textual[shard] + (1.0 - alpha) * social
        if not select_local:
            return shard, scores, social
        # ``shard`` holds ascending candidate positions, and the candidate
        # block is ascending in item id, so tie-breaking on positions is
        # tie-breaking on item ids — the global rule.
        local = select_topk(shard, scores, k)
        return shard[local], scores[local], social[local]
