"""Core contribution: the blended scoring model and top-k query processing."""

from .accounting import AccessAccountant
from .query import Query, QueryResult, ScoredItem, make_queries
from .scoring import ScoreBreakdown, ScoringModel
from .plan import BatchPlan, ExecutionPlan, PartitionPreview, QueryPlanner
from .partition_exec import PartitionedExecutor
from .engine import SocialSearchEngine
from .topk import (
    ExactBaseline,
    HybridMerge,
    NoRandomAccess,
    SocialFirst,
    ThresholdAlgorithm,
    TopKAlgorithm,
    TopKHeap,
    available_algorithms,
    create_algorithm,
    register_algorithm,
)

__all__ = [
    "AccessAccountant",
    "Query",
    "QueryResult",
    "ScoredItem",
    "make_queries",
    "ScoringModel",
    "ScoreBreakdown",
    "SocialSearchEngine",
    "ExecutionPlan",
    "BatchPlan",
    "PartitionPreview",
    "QueryPlanner",
    "PartitionedExecutor",
    "TopKAlgorithm",
    "TopKHeap",
    "ExactBaseline",
    "ThresholdAlgorithm",
    "NoRandomAccess",
    "SocialFirst",
    "HybridMerge",
    "available_algorithms",
    "create_algorithm",
    "register_algorithm",
]
