"""The blended social/textual scoring model.

For a seeker *s*, query *q* and item *i* the score is

``score(s, q, i) = (1/|q|) · Σ_{t∈q} [ α·ntf(i,t) + (1−α)·nsf(s,i,t) ]``

with

* ``ntf(i,t)  = tf(i,t) / Z_t`` — tag frequency (distinct endorsers)
  normalised by the largest frequency ``Z_t`` on the tag's posting list;
* ``nsf(s,i,t) = (Σ_{v ∈ taggers(i,t)} prox(s,v)) / Z_t`` — proximity-weighted
  endorser mass, normalised by the same ``Z_t``.

Because proximities are at most 1, ``nsf ≤ ntf ≤ 1``; both components live
on the same scale, the aggregate is monotone in every input, and the bound
arithmetic used by the threshold-style algorithms stays simple.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Tuple

import numpy as np

from ..config import ScoringConfig
from ..proximity.base import ProximityMeasure
from ..storage.dataset import Dataset
from .accounting import AccessAccountant


@dataclass(frozen=True)
class ScoredBlock:
    """Vectorized scores of a block of candidate items (parallel arrays).

    ``random_charges`` (present when requested) is the number of random
    accesses the scalar path would spend scoring each item exactly — one
    frequency lookup per tag plus one per charged endorser — so callers can
    mirror the scalar access accounting without redoing the gathers.
    """

    item_ids: np.ndarray
    scores: np.ndarray
    textual: np.ndarray
    social: np.ndarray
    random_charges: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return int(self.item_ids.shape[0])


@dataclass(frozen=True)
class ScoreBreakdown:
    """Exact score of one item, split into its components."""

    score: float
    textual: float
    social: float


class ScoringModel:
    """Computes exact scores and the bound terms algorithms reason with."""

    #: Upper bound on memoised candidate blocks (distinct tag combinations).
    _CANDIDATE_CACHE_LIMIT = 1024

    def __init__(self, dataset: Dataset, proximity: ProximityMeasure,
                 config: Optional[ScoringConfig] = None) -> None:
        self._dataset = dataset
        self._proximity = proximity
        self._config = config or ScoringConfig()
        self._candidate_cache: Dict[Tuple[str, ...], np.ndarray] = {}
        self._candidate_cache_token: Optional[object] = None

    @property
    def dataset(self) -> Dataset:
        """The dataset scores are computed against."""
        return self._dataset

    @property
    def proximity(self) -> ProximityMeasure:
        """The proximity measure supplying the social component."""
        return self._proximity

    @property
    def config(self) -> ScoringConfig:
        """The scoring configuration in effect."""
        return self._config

    @property
    def alpha(self) -> float:
        """Weight of the textual component."""
        return self._config.alpha

    # ------------------------------------------------------------------ #
    # Normalisation
    # ------------------------------------------------------------------ #

    def normaliser(self, tag: str) -> float:
        """``Z_t``: the largest tag frequency of ``tag`` (at least 1)."""
        return float(max(1, self._dataset.inverted_index.max_frequency(tag)))

    def normalised_tf(self, item_id: int, tag: str) -> float:
        """``ntf(i, t)`` — normalised tag frequency in [0, 1]."""
        return self._dataset.inverted_index.frequency(item_id, tag) / self.normaliser(tag)

    # ------------------------------------------------------------------ #
    # Exact scoring
    # ------------------------------------------------------------------ #

    def social_mass(self, seeker: int, item_id: int, tag: str,
                    proximity_vector: Mapping[int, float],
                    accountant: Optional[AccessAccountant] = None) -> float:
        """Raw proximity-weighted endorser mass ``Σ_v prox(s, v)``.

        Taggers are visited in ascending id order — the same order the
        endorser index stores its CSR segments in — so the scalar and
        vectorized scorers accumulate floating-point mass identically.
        """
        mass = 0.0
        for tagger in self._dataset.tagging.taggers_sorted(item_id, tag):
            if tagger == seeker and not self._config.include_seeker:
                continue
            if accountant is not None:
                accountant.charge_random()
            mass += proximity_vector.get(tagger, 0.0)
        return mass

    def exact_score(self, seeker: int, item_id: int, tags: Iterable[str],
                    proximity_vector: Mapping[int, float],
                    accountant: Optional[AccessAccountant] = None) -> ScoreBreakdown:
        """Exact blended score of ``item_id`` for the seeker and tags."""
        tags = tuple(tags)
        if not tags:
            return ScoreBreakdown(0.0, 0.0, 0.0)
        alpha = self._config.alpha
        textual_total = 0.0
        social_total = 0.0
        for tag in tags:
            normaliser = self.normaliser(tag)
            if accountant is not None:
                accountant.charge_random()
            textual = self._dataset.inverted_index.frequency(item_id, tag) / normaliser
            social = self.social_mass(seeker, item_id, tag, proximity_vector,
                                      accountant=accountant) / normaliser
            textual_total += textual
            social_total += min(1.0, social)
        m = float(len(tags))
        textual_component = textual_total / m
        social_component = social_total / m
        score = alpha * textual_component + (1.0 - alpha) * social_component
        return ScoreBreakdown(score=score, textual=textual_component,
                              social=social_component)

    def proximity_vector(self, seeker: int) -> Dict[int, float]:
        """Full proximity vector of the seeker (used by exact baselines)."""
        return self._proximity.vector(seeker)

    def proximity_vector_array(self, seeker: int) -> np.ndarray:
        """Dense per-user proximity array of the seeker (read-only).

        The seeker's own entry is always 0, which is exactly the value the
        scalar path observes (``vector()`` never contains the seeker), so
        gathering from this array needs no seeker-exclusion branch.
        """
        return self._proximity.vector_array(seeker)

    # ------------------------------------------------------------------ #
    # Vectorized scoring
    # ------------------------------------------------------------------ #

    def score_block(self, seeker: int, item_ids: np.ndarray,
                    tags: Tuple[str, ...],
                    proximity: Optional[np.ndarray] = None,
                    with_charges: bool = False) -> ScoredBlock:
        """Exact blended scores of a block of items, computed with numpy.

        ``item_ids`` must be ascending (use :meth:`candidate_block` for the
        full per-query candidate set).  The arithmetic mirrors
        :meth:`exact_score` operation for operation — per-tag accumulation
        in query order, endorser mass reduced in ascending tagger order —
        so the two paths agree to within one or two ulps and produce
        identical rankings under the (score desc, item id asc) order.

        With ``with_charges`` the returned block also carries the per-item
        scalar-equivalent random-access counts (computed in the same pass,
        from the same gathers).
        """
        if proximity is None:
            proximity = self.proximity_vector_array(seeker)
        n = int(item_ids.shape[0])
        alpha = self._config.alpha
        textual_total = np.zeros(n, dtype=np.float64)
        social_total = np.zeros(n, dtype=np.float64)
        charges = np.zeros(n, dtype=np.int64) if with_charges else None
        if n and tags:
            for tag in tags:
                normaliser = self.normaliser(tag)
                bundle = self._dataset.endorser_index.for_tag(tag)
                if bundle is None or len(bundle) == 0:
                    if charges is not None:
                        charges += 1  # the frequency lookup still happens
                    continue
                # prox[seeker] is 0 by the vector_array contract, so the
                # include_seeker flag needs no branch here: the seeker's own
                # endorsements contribute zero mass either way (it only
                # affects access accounting).
                mass = bundle.social_mass(proximity)
                if item_ids is bundle.item_ids:
                    # Single-tag fast path: the candidate block IS this
                    # tag's item array (candidate_block returns it by
                    # identity), so every item is found at its own position
                    # and the gather/mask machinery would be a no-op.
                    frequencies = bundle.frequencies
                    social = np.minimum(1.0, mass / normaliser)
                else:
                    positions, found = bundle.positions_of(item_ids)
                    frequencies = np.where(found, bundle.frequencies[positions], 0)
                    social = np.minimum(
                        1.0, np.where(found, mass[positions], 0.0) / normaliser)
                textual_total += frequencies / normaliser
                social_total += social
                if charges is not None:
                    endorsers = frequencies
                    if not self._config.include_seeker:
                        # The scalar path skips the seeker before charging.
                        seeker_flags = bundle.seeker_flags(seeker)
                        if item_ids is bundle.item_ids:
                            endorsers = endorsers - seeker_flags.astype(np.int64)
                        else:
                            endorsers = endorsers - np.where(
                                found, seeker_flags[positions].astype(np.int64), 0)
                    charges += 1 + endorsers
        m = float(len(tags)) if tags else 1.0
        textual_component = textual_total / m
        social_component = social_total / m
        scores = alpha * textual_component + (1.0 - alpha) * social_component
        return ScoredBlock(item_ids=item_ids, scores=scores,
                           textual=textual_component, social=social_component,
                           random_charges=charges)

    def candidate_block(self, tags: Tuple[str, ...]) -> np.ndarray:
        """Ascending ids of every item carrying at least one query tag.

        The block depends only on the tag combination, so it is memoised
        per :class:`ScoringModel` (one model lives per algorithm instance):
        repeated queries over popular tag sets skip the union/unique pass.
        The returned array must be treated as read-only.
        """
        index = self._dataset.endorser_index
        # The token holds the index object itself (not its id(), which
        # CPython may reuse after a swap-and-collect) plus the version
        # DatasetUpdater bumps per in-place folded delta; either kind of
        # change invalidates blocks memoised against the previous state.
        token = self._candidate_cache_token
        if token is None or token[0] is not index \
                or token[1] != getattr(index, "version", 0):
            self._candidate_cache.clear()
            self._candidate_cache_token = (index, getattr(index, "version", 0))
        block = self._candidate_cache.get(tags)
        if block is None:
            if len(self._candidate_cache) >= self._CANDIDATE_CACHE_LIMIT:
                self._candidate_cache.clear()
            block = index.candidate_items(tags)
            self._candidate_cache[tags] = block
        return block

    # ------------------------------------------------------------------ #
    # Bound arithmetic (used by threshold-style algorithms)
    # ------------------------------------------------------------------ #

    def combine(self, textual: float, social: float) -> float:
        """Blend already-normalised per-query components."""
        return self._config.alpha * textual + (1.0 - self._config.alpha) * social

    def unseen_upper_bound(self, next_tf: Mapping[str, int],
                           frontier_proximity: float, tags: Tuple[str, ...]) -> float:
        """Upper bound on the score of any item not yet encountered.

        ``next_tf[t]`` is the frequency of the next unread posting of tag
        ``t`` (0 when exhausted); ``frontier_proximity`` is the proximity of
        the next unvisited friend (0 when the frontier is exhausted).
        """
        if not tags:
            return 0.0
        alpha = self._config.alpha
        total = 0.0
        for tag in tags:
            textual_bound = next_tf.get(tag, 0) / self.normaliser(tag)
            social_bound = min(1.0, frontier_proximity)
            total += alpha * textual_bound + (1.0 - alpha) * social_bound
        return total / float(len(tags))
