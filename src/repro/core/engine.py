"""The public facade: :class:`SocialSearchEngine`.

The engine binds a dataset to a proximity measure and a default top-k
algorithm, caches algorithm instances, and exposes the one-call API most
applications need:

>>> engine = SocialSearchEngine(dataset)
>>> result = engine.search(seeker=4, tags=["jazz", "vinyl"], k=10)

Every knob (α, algorithm, proximity measure, caching, early termination)
comes from an :class:`~repro.config.EngineConfig`, so experiments can be
described declaratively.
"""

from __future__ import annotations

import threading
from dataclasses import replace
from typing import Dict, Iterable, List, Optional, Sequence

from ..config import EngineConfig, ScoringConfig
from ..obs import trace as obs_trace
from ..proximity import CachedProximity, MaterializedProximity, create_proximity
from ..proximity.base import ProximityMeasure
from ..proximity.landmarks import LandmarkProximity
from ..storage.dataset import Dataset
from ..storage.partitioned import CorpusPartitions
from .batch import run_batch as _run_batch
from .partition_exec import PartitionedExecutor
from .plan import (EXECUTOR_PARTITIONED, SERVING_ANYTIME, SERVING_LANDMARK,
                   ExecutionPlan, QueryPlanner)
from .query import Query, QueryBudget, QueryResult
from .scoring import ScoringModel
from .topk.base import TopKAlgorithm, available_algorithms, create_algorithm


class SocialSearchEngine:
    """Social-aware top-k search over one dataset.

    Parameters
    ----------
    dataset:
        The corpus to query.
    config:
        Engine configuration; defaults to the social-first algorithm with
        shortest-path proximity and α = 0.5.
    proximity:
        Optional pre-built proximity measure.  When omitted, one is created
        from ``config.proximity`` and wrapped in an LRU cache if
        ``config.proximity.cache_size > 0``.
    partitions:
        Optional pre-built corpus layout.  When omitted and
        ``config.partitions > 1``, one is built with seeded label
        propagation; derived engines (:meth:`with_alpha`,
        :meth:`with_algorithm`) share the parent's layout.
    landmark_proximity:
        Optional pre-built landmark sketch for the approximate serving
        tier.  When omitted, one is built iff ``config.proximity.landmarks
        > 0`` and the engine is partitioned; derived engines share it.
    """

    def __init__(self, dataset: Dataset, config: Optional[EngineConfig] = None,
                 proximity: Optional[ProximityMeasure] = None,
                 partitions: Optional[CorpusPartitions] = None,
                 landmark_proximity: Optional[ProximityMeasure] = None) -> None:
        self._dataset = dataset
        self._config = config or EngineConfig()
        if proximity is None:
            proximity = create_proximity(self._config.proximity.measure,
                                         dataset.graph, self._config.proximity)
            if self._config.proximity.materialize:
                # Shard-served proximity replaces the LRU cache: a shard row
                # lookup is already O(touch), and lazy refinements are
                # memoised in the shard overlay.
                proximity = MaterializedProximity(
                    proximity, cluster_rounds=self._config.proximity.cluster_rounds)
                if self._config.proximity.materialize_eager:
                    proximity.build()
            elif self._config.proximity.cache_size > 0:
                proximity = CachedProximity(proximity,
                                            capacity=self._config.proximity.cache_size)
        self._proximity = proximity
        if partitions is None and self._config.partitions > 1:
            partitions = CorpusPartitions.build(
                dataset, self._config.partitions,
                seed=self._config.partition_seed)
        self._partitions = partitions
        self._partition_executor = (
            PartitionedExecutor(dataset, proximity, self._config, partitions)
            if partitions is not None and partitions.num_partitions > 1
            else None)
        # The approximate serving tier: a second partitioned executor over
        # landmark-sketch proximity.  ``effort="fast"`` queries route here;
        # its results carry ``is_exact=False`` and no error bound (the
        # sketch under-estimates social mass, so score bounds do not apply).
        if landmark_proximity is None and self._partition_executor is not None \
                and self._config.proximity.landmarks > 0:
            landmark_proximity = LandmarkProximity(dataset.graph,
                                                   self._config.proximity)
        self._landmark_proximity = landmark_proximity
        self._landmark_executor = (
            PartitionedExecutor(dataset, landmark_proximity, self._config,
                                partitions, label="landmark")
            if landmark_proximity is not None
            and self._partition_executor is not None
            else None)
        self._planner = QueryPlanner(self)
        self._algorithms: Dict[str, TopKAlgorithm] = {}  # guarded-by: _algorithms_lock
        # Algorithm instances are stateless per search, so they are shared
        # across the service's worker threads; only their lazy creation
        # needs serialising.
        self._algorithms_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def dataset(self) -> Dataset:
        """The dataset being queried."""
        return self._dataset

    @property
    def config(self) -> EngineConfig:
        """The engine configuration in effect."""
        return self._config

    @property
    def proximity(self) -> ProximityMeasure:
        """The proximity measure used for social relevance."""
        return self._proximity

    @property
    def scoring(self) -> ScoringModel:
        """A scoring model bound to this engine's configuration."""
        return ScoringModel(self._dataset, self._proximity, self._config.scoring)

    @property
    def planner(self) -> QueryPlanner:
        """The query planner deciding every execution route."""
        return self._planner

    @property
    def partitions(self) -> Optional[CorpusPartitions]:
        """The corpus partition layout (``None`` for single-partition engines)."""
        return self._partitions

    @property
    def partition_executor(self) -> Optional[PartitionedExecutor]:
        """The scatter-gather executor (``None`` for single-partition engines)."""
        return self._partition_executor

    @property
    def landmark_proximity(self) -> Optional[ProximityMeasure]:
        """The landmark sketch behind the approximate tier (``None`` if off)."""
        return self._landmark_proximity

    @property
    def landmark_executor(self) -> Optional[PartitionedExecutor]:
        """The approximate (landmark-sketch) executor (``None`` if off)."""
        return self._landmark_executor

    def algorithms(self) -> List[str]:
        """Names of every available top-k algorithm."""
        return list(available_algorithms())

    # ------------------------------------------------------------------ #
    # Querying
    # ------------------------------------------------------------------ #

    def _algorithm(self, name: str) -> TopKAlgorithm:
        if name not in self._algorithms:
            with self._algorithms_lock:
                if name not in self._algorithms:
                    self._algorithms[name] = create_algorithm(
                        name, self._dataset, self._proximity, self._config,
                    )
        return self._algorithms[name]

    def search(self, seeker: int, tags: Sequence[str], k: int = 10,
               algorithm: Optional[str] = None) -> QueryResult:
        """Answer a query for ``seeker`` over ``tags`` returning ``k`` items."""
        query = Query(seeker=seeker, tags=tuple(tags), k=k)
        return self.run(query, algorithm=algorithm)

    def run(self, query: Query, algorithm: Optional[str] = None) -> QueryResult:
        """Run a prepared :class:`Query` with the configured (or given) algorithm.

        The planner picks the execution route (registry algorithm vs
        partitioned scatter-gather) through its memoised route table;
        every route answers with identical rankings, scores and access
        accounting.  Use :meth:`explain_plan` for the full plan record.
        """
        name = algorithm or self._config.algorithm
        tracer = obs_trace.get_tracer()
        if tracer is None:  # production default: zero per-query overhead
            executor, _reason = self._planner.route(name)
            if executor == EXECUTOR_PARTITIONED:
                if not query.has_serving_hint:
                    return self._partition_executor.search(query)
                decision = self._planner.serving(query, executor)
                if decision.mode == SERVING_LANDMARK:
                    return self._landmark_executor.search(query)
                return self._partition_executor.search(
                    query, budget=decision.budget)
            return self._algorithm(name).search(query)
        with tracer.span("engine.run", seeker=query.seeker,
                         tags=",".join(query.tags), k=query.k,
                         algorithm=name) as root:
            with tracer.span("plan.route") as route_span:
                executor, reason = self._planner.route(name)
                route_span.set(executor=executor,
                               memo_hits=self._planner.route_memo_hits,
                               lookups=self._planner.route_lookups)
            root.set(executor=executor, reason=reason)
            if executor == EXECUTOR_PARTITIONED:
                if not query.has_serving_hint:
                    return self._partition_executor.search(query)
                decision = self._planner.serving(query, executor)
                root.set(serving_mode=decision.mode,
                         serving_reason=decision.reason)
                if decision.mode == SERVING_LANDMARK:
                    return self._landmark_executor.search(query)
                return self._partition_executor.search(
                    query, budget=decision.budget)
            with tracer.span("algorithm.search", algorithm=name):
                return self._algorithm(name).search(query)

    def execute(self, query: Query, plan: ExecutionPlan) -> QueryResult:
        """Drive a planned query through its chosen executor."""
        if plan.executor == EXECUTOR_PARTITIONED:
            if plan.serving_mode == SERVING_LANDMARK \
                    and self._landmark_executor is not None:
                return self._landmark_executor.search(query)
            budget = None
            if plan.serving_mode == SERVING_ANYTIME and (
                    plan.budget_deadline_ms is not None
                    or plan.budget_max_scanned is not None):
                budget = QueryBudget(deadline_ms=plan.budget_deadline_ms,
                                     max_scanned=plan.budget_max_scanned)
            return self._partition_executor.search(query, budget=budget)
        return self._algorithm(plan.algorithm).search(query)

    def explain_plan(self, query: Query,
                     algorithm: Optional[str] = None) -> ExecutionPlan:
        """The full execution plan for ``query`` — with per-partition bound
        previews — without executing it (backs ``repro explain``)."""
        return self._planner.plan(query, algorithm=algorithm, preview=True)

    def run_many(self, queries: Iterable[Query],
                 algorithm: Optional[str] = None, parallel: bool = False,
                 workers: Optional[int] = None) -> List[QueryResult]:
        """Run a batch of queries and return the individual results.

        With ``parallel=False`` (the default, kept for bit-for-bit
        reproducibility of the experiments) queries run sequentially on the
        calling thread.  With ``parallel=True`` the batch is dispatched
        through a transient :class:`repro.service.QueryService` executor with
        ``workers`` threads; caching and deduplication are disabled so the
        two paths perform exactly the same computations.
        """
        if not parallel:
            return [self.run(query, algorithm=algorithm) for query in queries]
        # Imported lazily: repro.service depends on this module.
        from ..config import ServiceConfig
        from ..service import QueryService

        config = ServiceConfig(workers=workers or 4, cache_capacity=0,
                               cache_ttl_seconds=0.0, deduplicate=False)
        with QueryService(self, config) as service:
            return service.run_many(queries, algorithm=algorithm)

    def run_batch(self, queries: Iterable[Query],
                  algorithm: Optional[str] = None) -> List[QueryResult]:
        """Run a batch with shared scans, coalesced by (cluster, tags).

        Queries over the same tags share one candidate scan (and, with
        materialized proximity, cluster-bound pruning of the social
        gather); see :mod:`repro.core.batch`.  Results are returned in
        input order and are identical — rankings, scores and access
        accounting — to :meth:`run_many` over the same queries.
        """
        return _run_batch(self, list(queries), algorithm=algorithm)

    # ------------------------------------------------------------------ #
    # Reconfiguration
    # ------------------------------------------------------------------ #

    def with_alpha(self, alpha: float) -> "SocialSearchEngine":
        """Return a new engine identical to this one but with a different α.

        The proximity measure (and its cache) is shared, so sweeping α in an
        experiment does not recompute proximity vectors.
        """
        scoring = ScoringConfig(
            alpha=alpha,
            include_seeker=self._config.scoring.include_seeker,
            proximity_floor=self._config.scoring.proximity_floor,
        )
        config = replace(self._config, scoring=scoring)
        return SocialSearchEngine(self._dataset, config, proximity=self._proximity,
                                  partitions=self._partitions,
                                  landmark_proximity=self._landmark_proximity)

    def with_algorithm(self, algorithm: str) -> "SocialSearchEngine":
        """Return a new engine defaulting to a different algorithm (shared proximity)."""
        config = replace(self._config, algorithm=algorithm)
        return SocialSearchEngine(self._dataset, config, proximity=self._proximity,
                                  partitions=self._partitions,
                                  landmark_proximity=self._landmark_proximity)

    def explain(self, result: QueryResult) -> str:
        """Human-readable explanation of a query result (used by examples)."""
        lines = [
            f"query: seeker={result.query.seeker} tags={list(result.query.tags)} "
            f"k={result.query.k}",
            f"algorithm: {result.algorithm} "
            f"(alpha={self._config.scoring.alpha}, "
            f"proximity={self._config.proximity.measure})",
            f"latency: {result.latency_seconds * 1000.0:.2f} ms, "
            f"early termination: {result.terminated_early}",
            f"accesses: {result.accounting.to_dict()}",
            "results:",
        ]
        for rank, item in enumerate(result.items, start=1):
            record = self._dataset.items.get_or_none(item.item_id)
            title = record.title if record is not None else f"item-{item.item_id}"
            lines.append(
                f"  {rank:2d}. {title} (id={item.item_id}) "
                f"score={item.score:.4f} [textual={item.textual:.4f}, "
                f"social={item.social:.4f}]"
            )
        return "\n".join(lines)
