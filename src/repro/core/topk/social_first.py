"""The social-first adaptive algorithm — the system's primary contribution.

The reconstruction of the "with a little help from my friends" query
technique: answer the seeker's query by walking their social neighbourhood
in decreasing proximity order, crediting every visited friend's
endorsements to the items they tagged, while *adaptively* deciding after
each batch whether the next unit of work should go to the social frontier
or to a tag's posting list.

Two design choices distinguish it from the classical TA/NRA adaptations:

* **Cheap, targeted random access** — when an item is first discovered, the
  algorithm fetches only its per-tag frequencies (a hash lookup), never the
  proximity of its endorsers.  Exact frequencies make the candidate's upper
  bound much tighter than NRA's (the number of endorsers a candidate can
  still gain is ``frequency − seen`` instead of the per-tag maximum), which
  is what allows early termination after visiting only the close part of
  the network.
* **Benefit-driven scheduling** — the next batch is spent on the source
  whose next element can contribute the most to an unseen item's score:
  ``(1 − α) · next-proximity`` for the frontier versus ``α · next-frequency
  / Z_t`` for each posting list.  With a social-leaning α the algorithm
  automatically becomes a pure network walk; with a textual-leaning α it
  degrades gracefully to posting-list processing.
"""

from __future__ import annotations

from .base import register_algorithm
from .interleave import InterleavedTopK


@register_algorithm("social-first")
class SocialFirst(InterleavedTopK):
    """Adaptive frontier/posting scheduling with frequency-only random access."""

    random_access = "textual"
    scheduling = "adaptive"
