"""Round-robin hybrid — the non-adaptive ablation of the social-first design.

Identical to :class:`~repro.core.topk.social_first.SocialFirst` in every
respect (frequency-only random access, same bounds, same termination test)
except that sources are consumed in a fixed round-robin order instead of by
marginal benefit.  Comparing the two isolates how much of the social-first
advantage comes from adaptive scheduling (the Figure-9 ablation).
"""

from __future__ import annotations

from .base import register_algorithm
from .interleave import InterleavedTopK


@register_algorithm("hybrid")
class HybridMerge(InterleavedTopK):
    """Round-robin scheduling with frequency-only random access."""

    random_access = "textual"
    scheduling = "round-robin"
