"""Bounded top-k heap.

Keeps the best ``k`` ``(score, item)`` pairs seen so far and exposes the
k-th best score, which is the lower bound every threshold-style algorithm
compares against its upper bounds.  Ties are broken by item id so the final
ranking is deterministic across algorithms and runs.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Tuple


class TopKHeap:
    """Fixed-capacity max-collection implemented over a min-heap.

    Entries are plain ``(score, -item_id)`` tuples (no per-entry objects to
    allocate) and the heap itself is slotted, so offering candidates in the
    per-query hot loop does not churn instance dictionaries.
    """

    __slots__ = ("_k", "_heap", "_scores")

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self._k = k
        # Min-heap of (score, -item_id) so the weakest kept entry is at the
        # root; -item_id makes *larger* item ids evict first on score ties,
        # matching the (score desc, item_id asc) final ordering.
        self._heap: List[Tuple[float, int]] = []
        self._scores: Dict[int, float] = {}

    @property
    def k(self) -> int:
        """Capacity of the heap."""
        return self._k

    def __len__(self) -> int:
        return len(self._heap)

    def __contains__(self, item_id: int) -> bool:
        return item_id in self._scores

    def is_full(self) -> bool:
        """Whether ``k`` entries are currently held."""
        return len(self._heap) >= self._k

    def kth_score(self) -> float:
        """Score of the weakest kept entry, or 0.0 while not yet full.

        Using 0.0 (the global score floor) before the heap fills keeps the
        termination tests trivially false until k candidates exist.
        """
        if not self.is_full():
            return 0.0
        return self._heap[0][0]

    def offer(self, item_id: int, score: float) -> bool:
        """Offer a candidate; returns ``True`` when it is (now) retained.

        Re-offering an item replaces its previous score (scores only ever
        tighten upwards during candidate refinement).
        """
        if item_id in self._scores:
            if score <= self._scores[item_id]:
                return True
            # Remove the stale entry lazily: rebuild without it.
            self._heap = [(s, neg) for s, neg in self._heap if -neg != item_id]
            heapq.heapify(self._heap)
            del self._scores[item_id]
        entry = (score, -item_id)
        if len(self._heap) < self._k:
            heapq.heappush(self._heap, entry)
            self._scores[item_id] = score
            return True
        if entry > self._heap[0]:
            evicted_score, evicted_neg = heapq.heapreplace(self._heap, entry)
            del self._scores[-evicted_neg]
            self._scores[item_id] = score
            return True
        return False

    def would_accept(self, score: float) -> bool:
        """Whether a new candidate with ``score`` would enter the heap."""
        if not self.is_full():
            return True
        weakest_score, weakest_neg = self._heap[0]
        return (score, 0) > (weakest_score, weakest_neg)

    def items(self) -> List[Tuple[int, float]]:
        """Retained ``(item_id, score)`` pairs, best first, ties by item id."""
        ordered = sorted(self._heap, key=lambda entry: (-entry[0], -entry[1]))
        return [(-neg, score) for score, neg in ordered]

    def item_ids(self) -> List[int]:
        """Retained item ids, best first."""
        return [item_id for item_id, _ in self.items()]

    def score_of(self, item_id: int) -> float:
        """Current score of a retained item (KeyError when not retained)."""
        return self._scores[item_id]
