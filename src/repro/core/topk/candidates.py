"""Candidate bookkeeping shared by the bound-based algorithms.

While a threshold-style algorithm runs, every item it has encountered is a
*candidate* with partial knowledge:

* the exact tag frequency for the tags where it was read from a posting
  list or fetched by random access;
* the social mass accumulated so far from *visited* friends, together with
  how many endorsers have been seen per tag.

From that partial knowledge the candidate derives a lower bound (what the
item is certainly worth) and an upper bound (what it could still become,
given the frequency of the next unread posting and the proximity of the
next unvisited friend).  The bounds drive both pruning and termination.

The pool answers "what is the best upper bound outside the current top-k"
*incrementally*: upper bounds only ever decrease as a search progresses
(posting frequencies and frontier proximities are non-increasing, and
refining a candidate's knowledge can only tighten its bound), so the pool
keeps a lazy max-heap of previously computed bounds and re-evaluates just
the entries whose stale value still beats the best fresh one.  The naive
alternative — rescanning every candidate each round — made NRA-style
termination checks quadratic in the candidate count.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Mapping, Optional, Tuple

from ..scoring import ScoringModel

#: No blended score can exceed 1: both components are normalised into
#: [0, 1] and the blend is convex.  Fresh candidates enter the bound heap
#: with this value and get an exact bound lazily on the first query.
_SCORE_CEILING = 1.0


class Candidate:
    """Partial knowledge about one item during query processing."""

    __slots__ = ("item_id", "known_frequency", "social_mass", "endorsers_seen")

    def __init__(self, item_id: int,
                 known_frequency: Optional[Dict[str, int]] = None,
                 social_mass: Optional[Dict[str, float]] = None,
                 endorsers_seen: Optional[Dict[str, int]] = None) -> None:
        self.item_id = item_id
        #: tag -> exact frequency, for tags where frequency is known.
        self.known_frequency: Dict[str, int] = known_frequency or {}
        #: tag -> accumulated proximity mass from visited endorsers.
        self.social_mass: Dict[str, float] = social_mass or {}
        #: tag -> number of endorsers already seen from the frontier.
        self.endorsers_seen: Dict[str, int] = endorsers_seen or {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Candidate(item_id={self.item_id}, "
                f"known_frequency={self.known_frequency}, "
                f"social_mass={self.social_mass})")

    # ------------------------------------------------------------------ #
    # Updates
    # ------------------------------------------------------------------ #

    def record_frequency(self, tag: str, frequency: int) -> None:
        """Record the exact tag frequency learned via posting read / random access."""
        self.known_frequency[tag] = frequency

    def knows_frequency(self, tag: str) -> bool:
        """Whether the exact frequency for ``tag`` is already known."""
        return tag in self.known_frequency

    def add_social(self, tag: str, proximity: float) -> None:
        """Add one visited endorser's proximity for ``tag``."""
        self.social_mass[tag] = self.social_mass.get(tag, 0.0) + proximity
        self.endorsers_seen[tag] = self.endorsers_seen.get(tag, 0) + 1

    # ------------------------------------------------------------------ #
    # Bounds
    # ------------------------------------------------------------------ #

    def lower_bound(self, scoring: ScoringModel, tags: Tuple[str, ...]) -> float:
        """Certain score given only what has been observed so far."""
        alpha = scoring.alpha
        total = 0.0
        for tag in tags:
            normaliser = scoring.normaliser(tag)
            textual = self.known_frequency.get(tag, 0) / normaliser
            social = min(1.0, self.social_mass.get(tag, 0.0) / normaliser)
            total += alpha * textual + (1.0 - alpha) * social
        return total / float(len(tags))

    def upper_bound(self, scoring: ScoringModel, tags: Tuple[str, ...],
                    next_tf: Mapping[str, int], frontier_proximity: float) -> float:
        """Optimistic score given what could still be observed.

        * Textual: the exact frequency when known, otherwise the frequency of
          the next unread posting of that tag (items not yet seen on the list
          cannot beat it).
        * Social: the accumulated mass plus ``frontier_proximity`` for every
          endorser not yet seen.  When the exact frequency is known the number
          of unseen endorsers is ``frequency - seen``; otherwise it is bounded
          by the largest frequency on the tag's posting list.
        """
        alpha = scoring.alpha
        total = 0.0
        for tag in tags:
            normaliser = scoring.normaliser(tag)
            if tag in self.known_frequency:
                frequency = self.known_frequency[tag]
                textual = frequency / normaliser
                max_endorsers = frequency
            else:
                textual = next_tf.get(tag, 0) / normaliser
                max_endorsers = int(normaliser)
            seen = self.endorsers_seen.get(tag, 0)
            unseen = max(0, max_endorsers - seen)
            social = self.social_mass.get(tag, 0.0) + frontier_proximity * unseen
            social = min(1.0, social / normaliser)
            total += alpha * textual + (1.0 - alpha) * social
        return total / float(len(tags))


class CandidatePool:
    """The set of candidates an algorithm is currently reasoning about."""

    __slots__ = ("_candidates", "_bound_heap")

    def __init__(self) -> None:
        self._candidates: Dict[int, Candidate] = {}
        # Lazy max-heap of (-stale_upper_bound, item_id).  Every candidate
        # has exactly one live entry; stale values over-estimate (bounds are
        # non-increasing over a search), which is what makes the lazy
        # re-evaluation in max_upper_bound_excluding sound.
        self._bound_heap: List[Tuple[float, int]] = []

    def __len__(self) -> int:
        return len(self._candidates)

    def __contains__(self, item_id: int) -> bool:
        return item_id in self._candidates

    def __iter__(self):
        return iter(self._candidates.values())

    def get(self, item_id: int) -> Optional[Candidate]:
        """Return the candidate for ``item_id`` or ``None``."""
        return self._candidates.get(item_id)

    def ensure(self, item_id: int) -> Tuple[Candidate, bool]:
        """Return ``(candidate, created)`` for ``item_id``, creating it if new."""
        candidate = self._candidates.get(item_id)
        if candidate is not None:
            return candidate, False
        candidate = Candidate(item_id=item_id)
        self._candidates[item_id] = candidate
        heapq.heappush(self._bound_heap, (-_SCORE_CEILING, item_id))
        return candidate, True

    def item_ids(self) -> Tuple[int, ...]:
        """All candidate item ids (unordered)."""
        return tuple(self._candidates)

    def max_upper_bound_excluding(self, scoring: ScoringModel, tags: Tuple[str, ...],
                                  next_tf: Mapping[str, int], frontier_proximity: float,
                                  excluded: frozenset) -> float:
        """Largest upper bound among candidates outside ``excluded``.

        Amortised cost is the number of candidates whose cached bound still
        exceeds the answer, not the pool size: entries are popped in stale
        order, re-evaluated with the current ``next_tf`` / frontier values,
        and pushed back fresh; as soon as the best remaining stale value
        cannot beat the best fresh non-excluded bound found so far, every
        untouched candidate is certifiably below it.

        Correctness relies on bounds never increasing between calls within
        one search (monotone ``next_tf`` / ``frontier_proximity`` and
        knowledge refinement), which every interleaving algorithm satisfies
        by construction.
        """
        heap = self._bound_heap
        best = 0.0
        refreshed: List[Tuple[float, int]] = []
        while heap:
            stale_negative, item_id = heap[0]
            if -stale_negative <= best:
                break
            heapq.heappop(heap)
            candidate = self._candidates.get(item_id)
            if candidate is None:
                continue
            fresh = candidate.upper_bound(scoring, tags, next_tf, frontier_proximity)
            refreshed.append((-fresh, item_id))
            if fresh > best and item_id not in excluded:
                best = fresh
        for entry in refreshed:
            heapq.heappush(heap, entry)
        return best
