"""Candidate bookkeeping shared by the bound-based algorithms.

While a threshold-style algorithm runs, every item it has encountered is a
*candidate* with partial knowledge:

* the exact tag frequency for the tags where it was read from a posting
  list or fetched by random access;
* the social mass accumulated so far from *visited* friends, together with
  how many endorsers have been seen per tag.

From that partial knowledge the candidate derives a lower bound (what the
item is certainly worth) and an upper bound (what it could still become,
given the frequency of the next unread posting and the proximity of the
next unvisited friend).  The bounds drive both pruning and termination.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from ..scoring import ScoringModel


@dataclass
class Candidate:
    """Partial knowledge about one item during query processing."""

    item_id: int
    #: tag -> exact frequency, for tags where frequency is known.
    known_frequency: Dict[str, int] = field(default_factory=dict)
    #: tag -> accumulated proximity mass from visited endorsers.
    social_mass: Dict[str, float] = field(default_factory=dict)
    #: tag -> number of endorsers already seen from the frontier.
    endorsers_seen: Dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Updates
    # ------------------------------------------------------------------ #

    def record_frequency(self, tag: str, frequency: int) -> None:
        """Record the exact tag frequency learned via posting read / random access."""
        self.known_frequency[tag] = frequency

    def knows_frequency(self, tag: str) -> bool:
        """Whether the exact frequency for ``tag`` is already known."""
        return tag in self.known_frequency

    def add_social(self, tag: str, proximity: float) -> None:
        """Add one visited endorser's proximity for ``tag``."""
        self.social_mass[tag] = self.social_mass.get(tag, 0.0) + proximity
        self.endorsers_seen[tag] = self.endorsers_seen.get(tag, 0) + 1

    # ------------------------------------------------------------------ #
    # Bounds
    # ------------------------------------------------------------------ #

    def lower_bound(self, scoring: ScoringModel, tags: Tuple[str, ...]) -> float:
        """Certain score given only what has been observed so far."""
        alpha = scoring.alpha
        total = 0.0
        for tag in tags:
            normaliser = scoring.normaliser(tag)
            textual = self.known_frequency.get(tag, 0) / normaliser
            social = min(1.0, self.social_mass.get(tag, 0.0) / normaliser)
            total += alpha * textual + (1.0 - alpha) * social
        return total / float(len(tags))

    def upper_bound(self, scoring: ScoringModel, tags: Tuple[str, ...],
                    next_tf: Mapping[str, int], frontier_proximity: float) -> float:
        """Optimistic score given what could still be observed.

        * Textual: the exact frequency when known, otherwise the frequency of
          the next unread posting of that tag (items not yet seen on the list
          cannot beat it).
        * Social: the accumulated mass plus ``frontier_proximity`` for every
          endorser not yet seen.  When the exact frequency is known the number
          of unseen endorsers is ``frequency - seen``; otherwise it is bounded
          by the largest frequency on the tag's posting list.
        """
        alpha = scoring.alpha
        total = 0.0
        for tag in tags:
            normaliser = scoring.normaliser(tag)
            if tag in self.known_frequency:
                frequency = self.known_frequency[tag]
                textual = frequency / normaliser
                max_endorsers = frequency
            else:
                textual = next_tf.get(tag, 0) / normaliser
                max_endorsers = int(normaliser)
            seen = self.endorsers_seen.get(tag, 0)
            unseen = max(0, max_endorsers - seen)
            social = self.social_mass.get(tag, 0.0) + frontier_proximity * unseen
            social = min(1.0, social / normaliser)
            total += alpha * textual + (1.0 - alpha) * social
        return total / float(len(tags))


class CandidatePool:
    """The set of candidates an algorithm is currently reasoning about."""

    def __init__(self) -> None:
        self._candidates: Dict[int, Candidate] = {}

    def __len__(self) -> int:
        return len(self._candidates)

    def __contains__(self, item_id: int) -> bool:
        return item_id in self._candidates

    def __iter__(self):
        return iter(self._candidates.values())

    def get(self, item_id: int) -> Optional[Candidate]:
        """Return the candidate for ``item_id`` or ``None``."""
        return self._candidates.get(item_id)

    def ensure(self, item_id: int) -> Tuple[Candidate, bool]:
        """Return ``(candidate, created)`` for ``item_id``, creating it if new."""
        candidate = self._candidates.get(item_id)
        if candidate is not None:
            return candidate, False
        candidate = Candidate(item_id=item_id)
        self._candidates[item_id] = candidate
        return candidate, True

    def item_ids(self) -> Tuple[int, ...]:
        """All candidate item ids (unordered)."""
        return tuple(self._candidates)

    def max_upper_bound_excluding(self, scoring: ScoringModel, tags: Tuple[str, ...],
                                  next_tf: Mapping[str, int], frontier_proximity: float,
                                  excluded: frozenset) -> float:
        """Largest upper bound among candidates outside ``excluded``."""
        best = 0.0
        for item_id, candidate in self._candidates.items():
            if item_id in excluded:
                continue
            bound = candidate.upper_bound(scoring, tags, next_tf, frontier_proximity)
            if bound > best:
                best = bound
        return best
