"""Fagin-style Threshold Algorithm (TA) adapted to the social setting.

Sorted access alternates round-robin between every query tag's posting list
and the seeker's proximity frontier.  The moment an item is discovered it is
fully scored by random access (tag frequencies plus the proximity of all of
its endorsers), so every seen candidate carries an exact score.  Processing
stops when the k-th best exact score reaches the threshold — the best score
any *unseen* item could still achieve given the current sorted-access
positions.

Strengths: exact scores throughout, simple termination test.
Weakness: the random-access step needs the seeker's proximity to arbitrary
endorsers, which forces materialising the proximity vector early.
"""

from __future__ import annotations

from .base import register_algorithm
from .interleave import InterleavedTopK


@register_algorithm("ta")
class ThresholdAlgorithm(InterleavedTopK):
    """Round-robin sorted access + full random access + threshold stop."""

    random_access = "full"
    scheduling = "round-robin"
