"""Exact full-scan baseline.

Materialises the seeker's complete proximity vector, enumerates every item
that carries at least one query tag, scores each exactly and keeps the best
``k``.  It is the correctness oracle for every other algorithm and the
"no early termination" end of the latency spectrum.
"""

from __future__ import annotations

import time
from typing import Set

from ..accounting import AccessAccountant
from ..query import Query, QueryResult
from .base import TopKAlgorithm, register_algorithm
from .heap import TopKHeap


@register_algorithm("exact")
class ExactBaseline(TopKAlgorithm):
    """Score every item touching a query tag; no pruning, no bounds."""

    def search(self, query: Query) -> QueryResult:
        """Answer the query by exhaustive scoring."""
        self._validate(query)
        started_at = time.perf_counter()
        accountant = AccessAccountant()

        proximity_vector = self._scoring.proximity_vector(query.seeker)
        accountant.charge_user_visit(len(proximity_vector))

        candidates: Set[int] = set()
        for tag in query.tags:
            postings = self._dataset.inverted_index.cursor(tag)
            while True:
                posting = postings.next()
                if posting is None:
                    break
                accountant.charge_sequential()
                candidates.add(posting.item_id)
        accountant.charge_candidate(len(candidates))

        heap = TopKHeap(query.k)
        for item_id in sorted(candidates):
            breakdown = self._scoring.exact_score(
                query.seeker, item_id, query.tags, proximity_vector,
                accountant=accountant,
            )
            heap.offer(item_id, breakdown.score)

        return self._finalise(query, heap, accountant, started_at,
                              terminated_early=False,
                              proximity_vector=proximity_vector)
