"""Exact full-scan baseline.

Materialises the seeker's complete proximity vector, enumerates every item
that carries at least one query tag, scores each exactly and keeps the best
``k``.  It is the correctness oracle for every other algorithm and the
"no early termination" end of the latency spectrum.

Two implementations answer the same contract:

* the **scalar** path — one Python-level ``exact_score`` per candidate,
  kept as the reference implementation and the benchmark baseline;
* the **vectorized** path (``scoring.vectorized``, default) — scores the
  whole candidate block with the numpy kernels
  (:meth:`~repro.core.scoring.ScoringModel.score_block`) and selects the
  top ``k`` with ``argpartition``, producing the identical ranking and the
  identical access-accounting numbers.
"""

from __future__ import annotations

import time
from typing import Set

import numpy as np

from ..accounting import AccessAccountant
from ..query import Query, QueryResult, ScoredItem
from .base import TopKAlgorithm, register_algorithm
from .heap import TopKHeap


def select_topk(item_ids: np.ndarray, scores: np.ndarray, k: int) -> np.ndarray:
    """Indices of the best ``k`` entries under (score desc, item id asc).

    Uses ``argpartition`` to avoid sorting the full block, then resolves
    score ties by item id over the partitioned superset so the result is
    identical to what :class:`~repro.core.topk.heap.TopKHeap` retains.
    """
    n = int(scores.shape[0])
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    k = min(k, n)
    if k < n:
        partition = np.argpartition(scores, n - k)
        threshold = scores[partition[n - k]]
        # Keep every entry tied with the k-th best score so ties are broken
        # by item id, not by argpartition's arbitrary placement.
        selected = np.nonzero(scores >= threshold)[0]
    else:
        selected = np.arange(n)
    order = np.lexsort((item_ids[selected], -scores[selected]))
    return selected[order[:k]]


@register_algorithm("exact")
class ExactBaseline(TopKAlgorithm):
    """Score every item touching a query tag; no pruning, no bounds."""

    def search(self, query: Query) -> QueryResult:
        """Answer the query by exhaustive scoring."""
        self._validate(query)
        if self._config.scoring.vectorized:
            return self._search_vectorized(query)
        return self._search_scalar(query)

    # ------------------------------------------------------------------ #
    # Scalar reference path
    # ------------------------------------------------------------------ #

    def _search_scalar(self, query: Query) -> QueryResult:
        started_at = time.perf_counter()
        accountant = AccessAccountant()

        proximity_vector = self._scoring.proximity_vector(query.seeker)
        accountant.charge_user_visit(len(proximity_vector))

        candidates: Set[int] = set()
        for tag in query.tags:
            postings = self._dataset.inverted_index.cursor(tag)
            while True:
                posting = postings.next()
                if posting is None:
                    break
                accountant.charge_sequential()
                candidates.add(posting.item_id)
        accountant.charge_candidate(len(candidates))

        heap = TopKHeap(query.k)
        for item_id in sorted(candidates):
            breakdown = self._scoring.exact_score(
                query.seeker, item_id, query.tags, proximity_vector,
                accountant=accountant,
            )
            heap.offer(item_id, breakdown.score)

        return self._finalise(query, heap, accountant, started_at,
                              terminated_early=False,
                              proximity_vector=proximity_vector)

    # ------------------------------------------------------------------ #
    # Vectorized fast path
    # ------------------------------------------------------------------ #

    def _search_vectorized(self, query: Query) -> QueryResult:
        started_at = time.perf_counter()
        accountant = AccessAccountant()
        seeker = query.seeker

        proximity = self._scoring.proximity_vector_array(seeker)
        accountant.charge_user_visit(int(np.count_nonzero(proximity)))

        candidates = self._scoring.candidate_block(query.tags)
        block = self._scoring.score_block(seeker, candidates, query.tags,
                                          proximity=proximity, with_charges=True)

        # Mirror the scalar path's access accounting exactly: one sequential
        # access per posting read, plus the per-item random-access charges
        # score_block derived in the same pass as the scores.
        sequential = sum(self._dataset.inverted_index.list_length(tag)
                         for tag in query.tags)
        accountant.charge_sequential(sequential)
        accountant.charge_candidate(int(candidates.shape[0]))
        accountant.charge_random(int(block.random_charges.sum()))

        top = select_topk(candidates, block.scores, query.k)
        # The scalar path re-scores the final heap in _finalise; mirror the
        # charges without redoing the arithmetic.
        accountant.charge_random(int(block.random_charges[top].sum()))

        # Bulk tolist() conversion: one call per array instead of one numpy
        # scalar __float__ per field per item (a measurable share of the
        # per-query cost once scoring itself is vectorized).
        items = [
            ScoredItem(item_id=item_id, score=score, textual=textual, social=social)
            for item_id, score, textual, social in zip(
                block.item_ids[top].tolist(), block.scores[top].tolist(),  # lint: allow(hot-path-materialisation) -- k-sized top-k slices
                block.textual[top].tolist(), block.social[top].tolist())  # lint: allow(hot-path-materialisation) -- k-sized top-k slices
        ]
        return QueryResult(
            query=query,
            items=items,
            algorithm=self.name,
            latency_seconds=time.perf_counter() - started_at,
            accounting=accountant,
            terminated_early=False,
        )
