"""Access sources consumed by the interleaving algorithms.

Threshold-style processing draws from two kinds of sorted sources:

* :class:`TextualSource` — one per query tag; wraps the tag's
  frequency-ordered posting list and exposes the frequency of the next
  unread posting as the textual upper bound.
* :class:`SocialFrontier` — one per query; wraps the proximity measure's
  ranked stream of friends and exposes the proximity of the next unvisited
  friend as the social upper bound.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from ...proximity.base import ProximityMeasure
from ...storage.inverted_index import InvertedIndex, Posting, PostingListCursor


class TextualSource:
    """Sequential access to one tag's frequency-ordered posting list."""

    __slots__ = ("_tag", "_cursor")

    def __init__(self, index: InvertedIndex, tag: str) -> None:
        self._tag = tag
        self._cursor: PostingListCursor = index.cursor(tag)

    @property
    def tag(self) -> str:
        """The tag this source serves."""
        return self._tag

    def exhausted(self) -> bool:
        """Whether the posting list has been fully read."""
        return self._cursor.exhausted()

    def next_frequency(self) -> int:
        """Frequency of the next unread posting (0 when exhausted)."""
        return self._cursor.peek_frequency()

    def read(self) -> Optional[Posting]:
        """Read the next posting, or ``None`` when exhausted."""
        return self._cursor.next()

    def consumed(self) -> int:
        """Number of postings read so far."""
        return self._cursor.position


class SocialFrontier:
    """Best-first stream of the seeker's friends in decreasing proximity.

    The underlying ranked stream is opened *lazily*: when the proximity
    measure can answer :meth:`~repro.proximity.base.ProximityMeasure.frontier_bound`
    cheaply (a materialized shard row, a warm cache entry), the peeks that
    drive termination tests — :meth:`next_proximity` / :meth:`exhausted` —
    are served from that bound, and the stream (which for some measures
    materialises and sorts the full proximity vector) is only built once a
    friend is actually visited.  ``frontier_bound`` is contractually equal
    to the first streamed value, so the deferred path takes exactly the
    same termination decisions as the eager one.
    """

    __slots__ = ("_proximity", "_seeker", "_stream", "_peeked", "_exhausted",
                 "_visited", "_bound")

    def __init__(self, proximity: ProximityMeasure, seeker: int) -> None:
        self._proximity = proximity
        self._seeker = seeker
        self._stream: Optional[Iterator[Tuple[int, float]]] = None
        self._peeked: Optional[Tuple[int, float]] = None
        self._exhausted = False
        self._visited = 0
        self._bound: Optional[float] = proximity.frontier_bound(seeker)

    def _fill(self) -> None:
        if self._peeked is None and not self._exhausted:
            if self._stream is None:
                self._stream = self._proximity.iter_ranked(self._seeker)
            try:
                self._peeked = next(self._stream)
            except StopIteration:
                self._exhausted = True

    def exhausted(self) -> bool:
        """Whether every reachable friend has been visited."""
        if self._stream is None and self._bound is not None:
            return self._bound <= 0.0
        self._fill()
        return self._exhausted and self._peeked is None

    def next_proximity(self) -> float:
        """Proximity of the next unvisited friend (0.0 when exhausted).

        This value upper-bounds the proximity of *every* friend not yet
        visited, because the stream is non-increasing.
        """
        if self._stream is None and self._bound is not None:
            return self._bound if self._bound > 0.0 else 0.0
        self._fill()
        if self._peeked is None:
            return 0.0
        return self._peeked[1]

    def pop(self) -> Optional[Tuple[int, float]]:
        """Visit the next friend, returning ``(user, proximity)`` or ``None``."""
        self._fill()
        if self._peeked is None:
            return None
        entry = self._peeked
        self._peeked = None
        self._visited += 1
        return entry

    @property
    def visited(self) -> int:
        """Number of friends visited so far."""
        return self._visited


def build_textual_sources(index: InvertedIndex, tags: Tuple[str, ...]
                          ) -> Dict[str, TextualSource]:
    """One :class:`TextualSource` per query tag."""
    return {tag: TextualSource(index, tag) for tag in tags}


def next_frequencies(sources: Dict[str, TextualSource]) -> Dict[str, int]:
    """Snapshot of every tag's next unread frequency (the textual bounds)."""
    return {tag: source.next_frequency() for tag, source in sources.items()}
