"""Shared machinery of the interleaving (threshold-style) algorithms.

All four non-exhaustive algorithms — Fagin-style TA, NRA, the round-robin
hybrid and the adaptive social-first algorithm — share the same skeleton:

1. open one :class:`~repro.core.topk.sources.TextualSource` per query tag
   and one :class:`~repro.core.topk.sources.SocialFrontier` for the seeker;
2. repeatedly pick a source (scheduling policy), consume a batch from it and
   update candidate knowledge;
3. after every round, compare the current k-th best lower bound against the
   upper bound of everything else; stop as soon as no outsider can still
   enter the top-k (early termination) or when every source is exhausted.

They differ along two orthogonal axes captured by class attributes:

* ``random_access`` — ``"full"`` fetches an exact score the moment an item
  is discovered (TA), ``"textual"`` fetches only the cheap tag frequencies
  (social-first / hybrid), ``"none"`` never random-accesses (NRA);
* ``scheduling`` — ``"round-robin"`` alternates sources blindly,
  ``"adaptive"`` picks the source whose next element can contribute the
  most to an unseen item's score.
"""

from __future__ import annotations

import time
from typing import Dict, Mapping, Optional, Tuple

from ..accounting import AccessAccountant
from ..query import Query, QueryResult
from .base import TopKAlgorithm
from .candidates import Candidate, CandidatePool
from .heap import TopKHeap
from .sources import SocialFrontier, build_textual_sources, next_frequencies

#: Scheduling token meaning "consume the social frontier next".
SOCIAL_SOURCE = "__social__"


class InterleavedTopK(TopKAlgorithm):
    """Skeleton of threshold-style algorithms; subclasses pick the policy."""

    #: One of ``"full"``, ``"textual"``, ``"none"``.
    random_access: str = "textual"
    #: One of ``"round-robin"``, ``"adaptive"``.
    scheduling: str = "round-robin"

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #

    def search(self, query: Query) -> QueryResult:
        """Answer the query by interleaved sorted access with early termination."""
        self._validate(query)
        started_at = time.perf_counter()
        accountant = AccessAccountant()

        textual_sources = build_textual_sources(self._dataset.inverted_index, query.tags)
        frontier = SocialFrontier(self._proximity, query.seeker)
        pool = CandidatePool()
        exact_scores: Dict[int, float] = {}
        proximity_vector: Optional[Dict[int, float]] = None

        # Round-robin order: social frontier first, then tags in query order.
        rotation = [SOCIAL_SOURCE] + list(query.tags)
        rotation_index = 0
        terminated_early = False

        while True:
            accountant.charge_round()
            source = self._choose_source(rotation, rotation_index, textual_sources,
                                         frontier, query)
            rotation_index += 1
            if source is None:
                break  # every source exhausted

            if source == SOCIAL_SOURCE:
                proximity_vector = self._consume_social(
                    query, frontier, pool, exact_scores, accountant, proximity_vector,
                )
            else:
                proximity_vector = self._consume_textual(
                    query, source, textual_sources, pool, exact_scores, accountant,
                    proximity_vector,
                )

            heap = self._current_topk(query, pool, exact_scores)
            if self._should_stop(query, heap, pool, exact_scores, textual_sources,
                                 frontier):
                terminated_early = not self._all_exhausted(textual_sources, frontier)
                break

        heap = self._current_topk(query, pool, exact_scores)
        return self._finalise(query, heap, accountant, started_at,
                              terminated_early=terminated_early,
                              proximity_vector=proximity_vector)

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #

    def _choose_source(self, rotation, rotation_index: int,
                       textual_sources, frontier: SocialFrontier,
                       query: Query) -> Optional[str]:
        """Pick the next source to consume, or ``None`` when all are exhausted."""
        if self._all_exhausted(textual_sources, frontier):
            return None
        if self.scheduling == "adaptive":
            return self._choose_adaptive(textual_sources, frontier, query)
        # Round-robin: skip exhausted sources.
        for offset in range(len(rotation)):
            source = rotation[(rotation_index + offset) % len(rotation)]
            if source == SOCIAL_SOURCE:
                if not frontier.exhausted():
                    return source
            elif not textual_sources[source].exhausted():
                return source
        return None

    def _choose_adaptive(self, textual_sources, frontier: SocialFrontier,
                         query: Query) -> Optional[str]:
        """Pick the source whose next element has the largest score potential.

        The potential of the social frontier is ``(1 - α) · next proximity``
        (a friend that proximate could push any item by that much); the
        potential of a textual source is ``α · next frequency / Z_t``.
        """
        alpha = self._scoring.alpha
        best_source: Optional[str] = None
        best_potential = -1.0
        if not frontier.exhausted():
            potential = (1.0 - alpha) * frontier.next_proximity()
            best_source, best_potential = SOCIAL_SOURCE, potential
        for tag, source in textual_sources.items():
            if source.exhausted():
                continue
            potential = alpha * source.next_frequency() / self._scoring.normaliser(tag)
            if potential > best_potential:
                best_source, best_potential = tag, potential
        return best_source

    @staticmethod
    def _all_exhausted(textual_sources, frontier: SocialFrontier) -> bool:
        return frontier.exhausted() and all(
            source.exhausted() for source in textual_sources.values()
        )

    # ------------------------------------------------------------------ #
    # Consuming sources
    # ------------------------------------------------------------------ #

    def _consume_social(self, query: Query, frontier: SocialFrontier,
                        pool: CandidatePool, exact_scores: Dict[int, float],
                        accountant: AccessAccountant,
                        proximity_vector: Optional[Dict[int, float]]
                        ) -> Optional[Dict[int, float]]:
        """Visit up to ``batch_size`` friends and credit their endorsements."""
        for _ in range(self._config.batch_size):
            entry = frontier.pop()
            if entry is None:
                break
            user, proximity = entry
            accountant.charge_user_visit()
            for tag in query.tags:
                accountant.charge_social()
                for item_id in self._dataset.social_index.items_for(user, tag):
                    candidate, created = pool.ensure(item_id)
                    if created:
                        accountant.charge_candidate()
                        proximity_vector = self._on_new_candidate(
                            query, candidate, exact_scores, accountant, proximity_vector,
                        )
                    candidate.add_social(tag, proximity)
        return proximity_vector

    def _consume_textual(self, query: Query, tag: str, textual_sources,
                         pool: CandidatePool, exact_scores: Dict[int, float],
                         accountant: AccessAccountant,
                         proximity_vector: Optional[Dict[int, float]]
                         ) -> Optional[Dict[int, float]]:
        """Read up to ``batch_size`` postings of ``tag``."""
        source = textual_sources[tag]
        for _ in range(self._config.batch_size):
            posting = source.read()
            if posting is None:
                break
            accountant.charge_sequential()
            candidate, created = pool.ensure(posting.item_id)
            candidate.record_frequency(tag, posting.frequency)
            if created:
                accountant.charge_candidate()
                proximity_vector = self._on_new_candidate(
                    query, candidate, exact_scores, accountant, proximity_vector,
                )
        return proximity_vector

    def _on_new_candidate(self, query: Query, candidate: Candidate,
                          exact_scores: Dict[int, float],
                          accountant: AccessAccountant,
                          proximity_vector: Optional[Dict[int, float]]
                          ) -> Optional[Dict[int, float]]:
        """Apply the algorithm's random-access policy to a new candidate."""
        if self.random_access == "none":
            return proximity_vector
        if self.random_access == "textual":
            for tag in query.tags:
                if not candidate.knows_frequency(tag):
                    accountant.charge_random()
                    candidate.record_frequency(
                        tag, self._dataset.inverted_index.frequency(candidate.item_id, tag)
                    )
            return proximity_vector
        # "full": fetch the exact blended score immediately (classic TA).
        if proximity_vector is None:
            proximity_vector = self._scoring.proximity_vector(query.seeker)
        breakdown = self._scoring.exact_score(
            query.seeker, candidate.item_id, query.tags, proximity_vector,
            accountant=accountant,
        )
        exact_scores[candidate.item_id] = breakdown.score
        return proximity_vector

    # ------------------------------------------------------------------ #
    # Bounds and termination
    # ------------------------------------------------------------------ #

    def _lower_bound(self, query: Query, candidate: Candidate,
                     exact_scores: Mapping[int, float]) -> float:
        if self.random_access == "full":
            return exact_scores.get(candidate.item_id, 0.0)
        return candidate.lower_bound(self._scoring, query.tags)

    def _current_topk(self, query: Query, pool: CandidatePool,
                      exact_scores: Mapping[int, float]) -> TopKHeap:
        """Top-k heap over current lower bounds (exact scores for TA)."""
        heap = TopKHeap(query.k)
        for candidate in pool:
            heap.offer(candidate.item_id, self._lower_bound(query, candidate, exact_scores))
        return heap

    def _should_stop(self, query: Query, heap: TopKHeap, pool: CandidatePool,
                     exact_scores: Mapping[int, float], textual_sources,
                     frontier: SocialFrontier) -> bool:
        """Early-termination test: can any outsider still beat the k-th result?"""
        if not self._config.early_termination:
            return False
        if not heap.is_full():
            return False
        kth = heap.kth_score()
        frontier_proximity = frontier.next_proximity()
        next_tf = next_frequencies(textual_sources)
        unseen_bound = self._scoring.unseen_upper_bound(next_tf, frontier_proximity,
                                                        query.tags)
        if kth < unseen_bound:
            return False
        if self.random_access == "full":
            # Seen candidates already carry exact scores; only unseen items matter.
            return True
        retained = frozenset(heap.item_ids())
        outsider_bound = pool.max_upper_bound_excluding(
            self._scoring, query.tags, next_tf, frontier_proximity, retained,
        )
        return kth >= outsider_bound
