"""Top-k algorithm interface and registry.

Every algorithm answers the same contract — :meth:`TopKAlgorithm.search`
takes a :class:`~repro.core.query.Query` and returns a
:class:`~repro.core.query.QueryResult` whose items carry *exact* scores —
but they differ in which index access paths they touch and how early they
can stop.  The registry lets configuration files and the benchmark harness
select algorithms by name.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from typing import Callable, Dict, List, Mapping, Optional, Tuple, Type

from ...config import EngineConfig
from ...errors import UnknownAlgorithmError
from ...proximity.base import ProximityMeasure
from ...storage.dataset import Dataset
from ..accounting import AccessAccountant
from ..query import Query, QueryResult, ScoredItem
from ..scoring import ScoringModel
from .heap import TopKHeap


class TopKAlgorithm(ABC):
    """Abstract base class for social-aware top-k algorithms."""

    #: Registry name; assigned by :func:`register_algorithm`.
    name: str = "abstract"

    def __init__(self, dataset: Dataset, proximity: ProximityMeasure,
                 config: Optional[EngineConfig] = None) -> None:
        self._dataset = dataset
        self._proximity = proximity
        self._config = config or EngineConfig()
        self._scoring = ScoringModel(dataset, proximity, self._config.scoring)

    @property
    def dataset(self) -> Dataset:
        """The dataset queried."""
        return self._dataset

    @property
    def proximity(self) -> ProximityMeasure:
        """The proximity measure supplying social relevance."""
        return self._proximity

    @property
    def config(self) -> EngineConfig:
        """The engine configuration in effect."""
        return self._config

    @property
    def scoring(self) -> ScoringModel:
        """The scoring model shared by all algorithms."""
        return self._scoring

    # ------------------------------------------------------------------ #
    # Contract
    # ------------------------------------------------------------------ #

    @abstractmethod
    def search(self, query: Query) -> QueryResult:
        """Answer ``query`` with the top-``k`` items by exact blended score."""

    # ------------------------------------------------------------------ #
    # Shared helpers
    # ------------------------------------------------------------------ #

    def _validate(self, query: Query) -> None:
        self._dataset.graph.validate_user(query.seeker)

    def _finalise(self, query: Query, heap: TopKHeap, accountant: AccessAccountant,
                  started_at: float, terminated_early: bool,
                  proximity_vector: Optional[Mapping[int, float]] = None) -> QueryResult:
        """Turn a top-k heap into a :class:`QueryResult` with exact scores.

        Bound-based algorithms may hold lower-bound scores in the heap; the
        returned items are re-scored exactly (charged as random accesses) so
        every algorithm reports comparable numbers.
        """
        if proximity_vector is None:
            proximity_vector = self._scoring.proximity_vector(query.seeker)
        items: List[ScoredItem] = []
        for item_id, _lower_bound in heap.items():
            breakdown = self._scoring.exact_score(
                query.seeker, item_id, query.tags, proximity_vector,
                accountant=accountant,
            )
            items.append(ScoredItem(item_id=item_id, score=breakdown.score,
                                    textual=breakdown.textual, social=breakdown.social))
        items.sort(key=lambda item: (-item.score, item.item_id))
        return QueryResult(
            query=query,
            items=items,
            algorithm=self.name,
            latency_seconds=time.perf_counter() - started_at,
            accounting=accountant,
            terminated_early=terminated_early,
        )


AlgorithmFactory = Callable[[Dataset, ProximityMeasure, Optional[EngineConfig]], TopKAlgorithm]

_REGISTRY: Dict[str, Type[TopKAlgorithm]] = {}


def register_algorithm(name: str) -> Callable[[Type[TopKAlgorithm]], Type[TopKAlgorithm]]:
    """Class decorator registering a top-k algorithm under ``name``."""

    def decorator(cls: Type[TopKAlgorithm]) -> Type[TopKAlgorithm]:
        cls.name = name
        _REGISTRY[name] = cls
        return cls

    return decorator


def available_algorithms() -> Tuple[str, ...]:
    """Names of all registered algorithms."""
    return tuple(sorted(_REGISTRY))


def create_algorithm(name: str, dataset: Dataset, proximity: ProximityMeasure,
                     config: Optional[EngineConfig] = None) -> TopKAlgorithm:
    """Instantiate the algorithm registered under ``name``."""
    if name not in _REGISTRY:
        raise UnknownAlgorithmError(name, available_algorithms())
    return _REGISTRY[name](dataset, proximity, config)
