"""Top-k query processing algorithms."""

from .base import (
    TopKAlgorithm,
    available_algorithms,
    create_algorithm,
    register_algorithm,
)
from .heap import TopKHeap
from .candidates import Candidate, CandidatePool
from .sources import SocialFrontier, TextualSource
from .exact import ExactBaseline
from .threshold import ThresholdAlgorithm
from .nra import NoRandomAccess
from .social_first import SocialFirst
from .hybrid import HybridMerge

__all__ = [
    "TopKAlgorithm",
    "register_algorithm",
    "create_algorithm",
    "available_algorithms",
    "TopKHeap",
    "Candidate",
    "CandidatePool",
    "SocialFrontier",
    "TextualSource",
    "ExactBaseline",
    "ThresholdAlgorithm",
    "NoRandomAccess",
    "SocialFirst",
    "HybridMerge",
]
