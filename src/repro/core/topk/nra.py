"""No-Random-Access (NRA) algorithm adapted to the social setting.

Like TA the algorithm alternates sorted access between posting lists and
the proximity frontier, but it never performs random accesses: candidate
knowledge is whatever the sorted streams happened to reveal.  Each candidate
therefore carries a *lower bound* (observed frequency + observed endorser
mass) and an *upper bound* (what the unread postings and unvisited friends
could still add).  Processing stops when no candidate outside the current
top-k — and no completely unseen item — can exceed the k-th best lower
bound.

Strengths: cheapest per-step cost, no proximity point lookups.
Weakness: bounds are looser, so it usually needs more sorted accesses than
the social-first algorithm before it can stop.
"""

from __future__ import annotations

from .base import register_algorithm
from .interleave import InterleavedTopK


@register_algorithm("nra")
class NoRandomAccess(InterleavedTopK):
    """Round-robin sorted access, bounds only, no random access."""

    random_access = "none"
    scheduling = "round-robin"
