"""Proximity-measure interface and registry.

A *proximity measure* maps a pair of users ``(seeker, target)`` to a score
in ``[0, 1]`` quantifying how much the target's tagging actions should count
as "help from a friend" when ranking results for the seeker.  Algorithms
consume proximity through two access paths:

* :meth:`ProximityMeasure.proximity` — point lookup, used by random-access
  style algorithms and by the exact baseline;
* :meth:`ProximityMeasure.iter_ranked` — a stream of ``(user, proximity)``
  pairs in non-increasing proximity order, used by frontier-expansion
  algorithms that want to visit the most helpful friends first.

Concrete measures register themselves under a short name so configuration
files can select them by string.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Dict, Iterator, List, Optional, Tuple, Type

import numpy as np

from ..config import ProximityConfig
from ..errors import UnknownProximityError
from ..graph import SocialGraph

RankedStream = Iterator[Tuple[int, float]]


class ProximityMeasure(ABC):
    """Abstract base class for social proximity measures.

    Parameters
    ----------
    graph:
        The social graph proximity is computed on.
    config:
        Shared :class:`~repro.config.ProximityConfig` carrying the measure's
        hyper-parameters.
    """

    #: Registry name; subclasses must override.
    name: str = "abstract"

    def __init__(self, graph: SocialGraph, config: Optional[ProximityConfig] = None) -> None:
        self._graph = graph
        self._config = config or ProximityConfig()

    @property
    def graph(self) -> SocialGraph:
        """The underlying social graph."""
        return self._graph

    @property
    def config(self) -> ProximityConfig:
        """The proximity configuration in effect."""
        return self._config

    # ------------------------------------------------------------------ #
    # Core interface
    # ------------------------------------------------------------------ #

    @abstractmethod
    def vector(self, seeker: int) -> Dict[int, float]:
        """Return ``{user: proximity}`` for every user with proximity above the floor.

        The seeker itself is never included.  Implementations must return
        values in ``[0, 1]``.
        """

    def vector_array(self, seeker: int) -> np.ndarray:
        """Dense form of :meth:`vector`: one float per user, 0 where unrelated.

        The seeker's own entry is always 0 (matching the dict form, which
        never contains the seeker), so vectorized scoring kernels can gather
        from the array without re-checking the seeker-exclusion rule.  The
        returned array must be treated as read-only; measures with a native
        array representation override this to skip the dict round-trip.
        """
        vector = self.vector(seeker)
        dense = np.zeros(self._graph.num_users, dtype=np.float64)
        if vector:
            users = np.fromiter(vector.keys(), dtype=np.int64, count=len(vector))
            values = np.fromiter(vector.values(), dtype=np.float64, count=len(vector))
            dense[users] = values
        return dense

    def proximity(self, seeker: int, target: int) -> float:
        """Proximity of ``target`` to ``seeker`` (0.0 when unrelated)."""
        self._graph.validate_user(seeker)
        self._graph.validate_user(target)
        if seeker == target:
            return 1.0
        return self.vector(seeker).get(target, 0.0)

    def iter_ranked(self, seeker: int) -> RankedStream:
        """Yield ``(user, proximity)`` pairs in non-increasing proximity order.

        The default implementation materialises :meth:`vector` and sorts it;
        streaming measures (shortest-path) override this with a lazy
        generator so frontier algorithms touch only the prefix they need.
        """
        vector = self.vector(seeker)
        ranked = sorted(vector.items(), key=lambda pair: (-pair[1], pair[0]))
        for user, value in ranked:
            yield user, value

    def frontier_bound(self, seeker: int) -> Optional[float]:
        """Cheap upper bound on the first value of :meth:`iter_ranked`, or ``None``.

        When a measure can answer "how proximate is the seeker's closest
        friend?" without materialising the ranked stream (a cached dense
        array, a materialized shard row), it returns that exact maximum here
        and :class:`~repro.core.topk.sources.SocialFrontier` defers opening
        the stream until a friend is actually visited.  The value must equal
        the first ranked proximity bit for bit — callers use it in
        termination tests that have to agree with the streamed path.
        ``None`` means "not known cheaply"; callers fall back to the stream.
        """
        return None

    def rebind(self, graph: SocialGraph) -> None:
        """Point the measure at a new (updated) social graph.

        :class:`~repro.storage.updates.DatasetUpdater` replaces the dataset's
        immutable CSR graph object on every edge/user addition; a measure
        built before the update would otherwise keep computing on the old
        graph forever.  Subclasses with precomputed per-graph state override
        :meth:`_on_graph_changed` to refresh it.
        """
        self._graph = graph
        self._on_graph_changed()

    def _on_graph_changed(self) -> None:
        """Hook for subclasses holding state derived from the graph."""

    def top(self, seeker: int, limit: int) -> List[Tuple[int, float]]:
        """Return the ``limit`` most proximate users to ``seeker``."""
        result: List[Tuple[int, float]] = []
        for user, value in self.iter_ranked(seeker):
            result.append((user, value))
            if len(result) >= limit:
                break
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(users={self._graph.num_users})"


_REGISTRY: Dict[str, Type[ProximityMeasure]] = {}


def register_proximity(name: str) -> Callable[[Type[ProximityMeasure]], Type[ProximityMeasure]]:
    """Class decorator registering a proximity measure under ``name``."""

    def decorator(cls: Type[ProximityMeasure]) -> Type[ProximityMeasure]:
        cls.name = name
        _REGISTRY[name] = cls
        return cls

    return decorator


def available_proximities() -> Tuple[str, ...]:
    """Names of all registered proximity measures."""
    return tuple(sorted(_REGISTRY))


def create_proximity(name: str, graph: SocialGraph,
                     config: Optional[ProximityConfig] = None) -> ProximityMeasure:
    """Instantiate the proximity measure registered under ``name``."""
    if name not in _REGISTRY:
        raise UnknownProximityError(name, available_proximities())
    return _REGISTRY[name](graph, config)
