"""Personalised PageRank proximity.

Proximity of ``target`` to ``seeker`` is the stationary probability that a
random walker who restarts at the seeker with probability ``1 - damping``
is found at the target.  Two estimators are provided:

* :class:`PersonalizedPageRankProximity` — deterministic power iteration on
  the weighted adjacency (exact up to the iteration tolerance).
* :class:`MonteCarloPageRankProximity` — walk sampling, useful to model the
  approximate sketches large deployments would use.

Both operate directly on the graph's CSR arrays: the power iteration is one
gather + ``bincount`` scatter per step over the whole edge set, and the
Monte-Carlo estimator advances every walk simultaneously, sampling each
step's neighbours with a single ``searchsorted`` against per-node cumulative
edge weights.

Scores are normalised by the maximum non-seeker entry so the top friend has
proximity 1, making the measure comparable with path-based proximities in
the blended scoring function.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..config import ProximityConfig
from ..graph import SocialGraph
from .base import ProximityMeasure, register_proximity


def _normalise(vector: Dict[int, float]) -> Dict[int, float]:
    """Scale a proximity vector so its maximum entry is 1 (empty-safe).

    Shared by the dict-based measures (Katz, neighbourhood overlap) whose
    working sets are sparse enough that dense arrays would be wasteful.
    """
    if not vector:
        return {}
    peak = max(vector.values())
    if peak <= 0.0:
        return {}
    return {user: value / peak for user, value in vector.items()}


def _normalise_array(dense: np.ndarray, seeker: int) -> np.ndarray:
    """Zero the seeker's entry and scale so the maximum entry is 1."""
    dense[seeker] = 0.0
    peak = float(dense.max()) if dense.shape[0] else 0.0
    if peak <= 0.0:
        return np.zeros_like(dense)
    return dense / peak


def _dense_to_vector(dense: np.ndarray, seeker: int) -> Dict[int, float]:
    """Dict view of the positive entries of a dense proximity array."""
    users = np.nonzero(dense > 0.0)[0]
    return {int(user): float(dense[user]) for user in users if int(user) != seeker}


@register_proximity("ppr")
class PersonalizedPageRankProximity(ProximityMeasure):
    """Power-iteration personalised PageRank on the CSR arrays."""

    def __init__(self, graph: SocialGraph, config: Optional[ProximityConfig] = None) -> None:
        super().__init__(graph, config)
        self._on_graph_changed()

    def _on_graph_changed(self) -> None:
        offsets, neighbours, weights = self.graph.csr_arrays()
        n = self.graph.num_users
        self._neighbours = neighbours
        self._weights = weights
        # Source node of every directed CSR edge, so one gather turns the
        # per-node rank vector into per-edge outgoing mass.
        self._edge_src = np.repeat(np.arange(n, dtype=np.int64),
                                   np.diff(offsets))
        self._weight_sums = np.bincount(self._edge_src, weights=weights,
                                        minlength=n).astype(np.float64)
        self._inv_weight_sums = np.where(self._weight_sums > 0.0,
                                         1.0 / np.where(self._weight_sums > 0.0,
                                                        self._weight_sums, 1.0),
                                         0.0)
        self._dangling = self._weight_sums <= 0.0

    def vector_array(self, seeker: int) -> np.ndarray:
        """Run the vectorized power iteration from the seeker's restart point."""
        graph = self.graph
        graph.validate_user(seeker)
        n = graph.num_users
        damping = self.config.damping
        rank = np.zeros(n, dtype=np.float64)
        rank[seeker] = 1.0
        for _ in range(self.config.ppr_iterations):
            share = damping * rank * self._inv_weight_sums
            nxt = np.bincount(self._neighbours,
                              weights=share[self._edge_src] * self._weights,
                              minlength=n)
            # Dangling mass returns to the seeker, as does the restart mass.
            nxt[seeker] += damping * float(rank[self._dangling].sum())
            nxt[seeker] += 1.0 - damping
            delta = float(np.abs(nxt - rank).sum())
            rank = nxt
            if delta < self.config.ppr_tolerance:
                break
        return _normalise_array(rank, seeker)

    def vector(self, seeker: int) -> Dict[int, float]:
        """Dict view of :meth:`vector_array` (positive entries only)."""
        return _dense_to_vector(self.vector_array(seeker), seeker)


@register_proximity("ppr-mc")
class MonteCarloPageRankProximity(ProximityMeasure):
    """Monte-Carlo personalised PageRank (vectorized walk sampling)."""

    def __init__(self, graph: SocialGraph, config: Optional[ProximityConfig] = None,
                 num_walks: int = 2000, seed: int = 13) -> None:
        super().__init__(graph, config)
        self._num_walks = int(num_walks)
        self._seed = int(seed)
        self._on_graph_changed()

    def _on_graph_changed(self) -> None:
        offsets, neighbours, weights = self.graph.csr_arrays()
        n = self.graph.num_users
        self._offsets = offsets
        self._neighbours = neighbours
        self._degrees = np.diff(offsets)
        # Per-node cumulative transition probabilities, shifted by the source
        # node index: entry e of node u lies in (u, u + 1].  A single global
        # searchsorted of ``u + r`` then lands inside u's segment, which is
        # how every active walk samples its next neighbour at once.
        cumulative = np.zeros(neighbours.shape[0], dtype=np.float64)
        for u in range(n):
            start, end = int(offsets[u]), int(offsets[u + 1])
            if start == end:
                continue
            segment = np.cumsum(weights[start:end])
            segment /= segment[-1]
            segment[-1] = 1.0  # guard against cumsum rounding below 1
            cumulative[start:end] = segment + u
        self._cumulative = cumulative

    def vector_array(self, seeker: int) -> np.ndarray:
        """Advance all walks in lock-step until every one has restarted."""
        graph = self.graph
        graph.validate_user(seeker)
        n = graph.num_users
        rng = np.random.default_rng(self._seed + seeker)
        damping = self.config.damping
        visits = np.zeros(n, dtype=np.float64)
        current = np.full(self._num_walks, seeker, dtype=np.int64)
        active = np.ones(self._num_walks, dtype=bool)
        for _hop in range(self.config.max_hops * 4):
            active &= rng.random(self._num_walks) <= damping
            active &= self._degrees[current] > 0
            if not active.any():
                break
            walkers = np.nonzero(active)[0]
            # Clip away from exactly 0 so ``u + r`` can never bisect into the
            # previous node's segment (whose last entry is exactly ``u``).
            r = np.clip(rng.random(walkers.shape[0]), 1e-12, None)
            positions = np.searchsorted(self._cumulative,
                                        current[walkers].astype(np.float64) + r,
                                        side="left")
            nodes = self._neighbours[positions]
            current[walkers] = nodes
            counted = nodes[nodes != seeker]
            if counted.shape[0]:
                visits += np.bincount(counted, minlength=n)
        return _normalise_array(visits, seeker)

    def vector(self, seeker: int) -> Dict[int, float]:
        """Dict view of the sampled visit frequencies."""
        return _dense_to_vector(self.vector_array(seeker), seeker)
