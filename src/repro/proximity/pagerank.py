"""Personalised PageRank proximity.

Proximity of ``target`` to ``seeker`` is the stationary probability that a
random walker who restarts at the seeker with probability ``1 - damping``
is found at the target.  Two estimators are provided:

* :class:`PersonalizedPageRankProximity` — deterministic power iteration on
  the weighted adjacency (exact up to the iteration tolerance).
* :class:`MonteCarloPageRankProximity` — walk sampling, useful to model the
  approximate sketches large deployments would use.

Scores are normalised by the maximum non-seeker entry so the top friend has
proximity 1, making the measure comparable with path-based proximities in
the blended scoring function.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..config import ProximityConfig
from ..graph import SocialGraph
from .base import ProximityMeasure, register_proximity


def _normalise(vector: Dict[int, float]) -> Dict[int, float]:
    """Scale a proximity vector so its maximum entry is 1 (empty-safe)."""
    if not vector:
        return {}
    peak = max(vector.values())
    if peak <= 0.0:
        return {}
    return {user: value / peak for user, value in vector.items()}


@register_proximity("ppr")
class PersonalizedPageRankProximity(ProximityMeasure):
    """Power-iteration personalised PageRank."""

    def __init__(self, graph: SocialGraph, config: Optional[ProximityConfig] = None) -> None:
        super().__init__(graph, config)
        self._on_graph_changed()

    def _on_graph_changed(self) -> None:
        graph = self.graph
        self._weight_sums = np.zeros(graph.num_users, dtype=np.float64)
        for u in range(graph.num_users):
            _, weights = graph.neighbours(u)
            self._weight_sums[u] = float(weights.sum())

    def vector(self, seeker: int) -> Dict[int, float]:
        """Run power iteration from the seeker's restart distribution."""
        graph = self.graph
        graph.validate_user(seeker)
        n = graph.num_users
        damping = self.config.damping
        rank = np.zeros(n, dtype=np.float64)
        rank[seeker] = 1.0
        restart = np.zeros(n, dtype=np.float64)
        restart[seeker] = 1.0
        for _ in range(self.config.ppr_iterations):
            nxt = np.zeros(n, dtype=np.float64)
            for u in np.nonzero(rank > 0.0)[0].tolist():
                mass = rank[u]
                if mass <= 0.0:
                    continue
                nbrs, weights = graph.neighbours(int(u))
                if nbrs.shape[0] == 0 or self._weight_sums[u] <= 0.0:
                    # Dangling mass returns to the seeker.
                    nxt[seeker] += damping * mass
                    continue
                share = damping * mass / self._weight_sums[u]
                np.add.at(nxt, nbrs, share * weights)
            nxt += (1.0 - damping) * restart
            delta = float(np.abs(nxt - rank).sum())
            rank = nxt
            if delta < self.config.ppr_tolerance:
                break
        result = {
            int(user): float(score)
            for user, score in enumerate(rank.tolist())
            if user != seeker and score > 0.0
        }
        return _normalise(result)


@register_proximity("ppr-mc")
class MonteCarloPageRankProximity(ProximityMeasure):
    """Monte-Carlo personalised PageRank (walk sampling)."""

    def __init__(self, graph: SocialGraph, config: Optional[ProximityConfig] = None,
                 num_walks: int = 2000, seed: int = 13) -> None:
        super().__init__(graph, config)
        self._num_walks = int(num_walks)
        self._seed = int(seed)

    def vector(self, seeker: int) -> Dict[int, float]:
        """Estimate visit frequencies with restart-terminated random walks."""
        graph = self.graph
        graph.validate_user(seeker)
        rng = np.random.default_rng(self._seed + seeker)
        damping = self.config.damping
        visits: Dict[int, int] = {}
        for _ in range(self._num_walks):
            node = seeker
            for _hop in range(self.config.max_hops * 4):
                if rng.random() > damping:
                    break
                nbrs, weights = graph.neighbours(node)
                if nbrs.shape[0] == 0:
                    break
                total = float(weights.sum())
                probabilities = weights / total
                node = int(rng.choice(nbrs, p=probabilities))
                if node != seeker:
                    visits[node] = visits.get(node, 0) + 1
        result = {user: float(count) for user, count in visits.items()}
        return _normalise(result)
