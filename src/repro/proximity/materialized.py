"""Materialized proximity shards: the offline end of the paper's trade-off.

The paper's central tension is *computing* social proximity online per
seeker versus *materializing* it offline for everyone.  PR 2 made the
online kernels fast, but a cold seeker still pays a full proximity
computation (e.g. a personalised-PageRank power iteration) on their first
query.  This module is the offline/online split that makes cold serving
O(touch):

* Seekers are partitioned into **clusters** with
  :func:`repro.graph.partition.label_propagation` — communities are exactly
  the sets of seekers whose proximity vectors overlap most, so one shard's
  rows share their non-zero structure.
* Each cluster becomes a :class:`ProximityShard`: a CSR block of the
  members' **exact** proximity rows (values bit-identical to what the
  wrapped measure computes online) plus one dense **upper-bound vector**,
  the element-wise maximum over the member rows.  The bound is admissible
  for every member, which is what lets threshold-style algorithms and the
  batched executor prune candidates without touching exact rows.
* :class:`MaterializedProximity` serves any seeker from their shard row
  (``cluster bound → row lookup``), falling back to **lazy refinement**
  through the wrapped measure for seekers that were never materialized
  (new users, post-update invalidations).

Shards are plain numpy arrays, so the whole structure serialises into the
:mod:`repro.storage.arena` memory-mapped file and comes back zero-copy.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..graph.partition import label_propagation
from ..obs.trace import span as obs_span
from .base import ProximityMeasure

_EMPTY_IDS = np.zeros(0, dtype=np.int64)
_EMPTY_VALUES = np.zeros(0, dtype=np.float64)


class ProximityShard:
    """One cluster's materialized proximity rows in CSR form (read-only).

    ``members`` are the seekers of the cluster in ascending id order; row
    ``r`` (``members[r]``) spans ``user_ids[offsets[r]:offsets[r+1]]`` /
    ``values[...]`` with user ids ascending inside the row.  ``bound`` is a
    dense per-user vector: ``bound[v] = max_r values_r[v]`` — an admissible
    upper bound on *any* member's proximity to ``v``.
    """

    __slots__ = ("cluster_id", "members", "offsets", "user_ids", "values", "bound")

    def __init__(self, cluster_id: int, members: np.ndarray, offsets: np.ndarray,
                 user_ids: np.ndarray, values: np.ndarray, bound: np.ndarray) -> None:
        self.cluster_id = cluster_id
        self.members = members
        self.offsets = offsets
        self.user_ids = user_ids
        self.values = values
        self.bound = bound

    def __len__(self) -> int:
        return int(self.members.shape[0])

    @property
    def num_entries(self) -> int:
        """Total number of stored ``(seeker, user, proximity)`` entries."""
        return int(self.user_ids.shape[0])

    def row_position(self, seeker: int) -> int:
        """Row index of ``seeker`` in this shard, or -1 when absent."""
        position = int(np.searchsorted(self.members, seeker))
        if position >= len(self) or int(self.members[position]) != seeker:
            return -1
        return position

    def row(self, position: int) -> Tuple[np.ndarray, np.ndarray]:
        """The ``(user_ids, values)`` arrays of one member row (views)."""
        start = int(self.offsets[position])
        end = int(self.offsets[position + 1])
        return self.user_ids[start:end], self.values[start:end]

    def memory_bytes(self) -> int:
        """Approximate footprint of the shard arrays in bytes."""
        return int(self.members.nbytes + self.offsets.nbytes
                   + self.user_ids.nbytes + self.values.nbytes + self.bound.nbytes)

    @classmethod
    def build(cls, cluster_id: int, members: Sequence[int],
              rows: Sequence[Tuple[np.ndarray, np.ndarray]],
              num_users: int) -> "ProximityShard":
        """Assemble a shard from per-member sparse rows (already ascending)."""
        member_array = np.asarray(members, dtype=np.int64)
        offsets = np.zeros(len(rows) + 1, dtype=np.int64)
        for position, (user_ids, _values) in enumerate(rows):
            offsets[position + 1] = offsets[position] + user_ids.shape[0]
        total = int(offsets[-1])
        user_ids = np.zeros(total, dtype=np.int64)
        values = np.zeros(total, dtype=np.float64)
        bound = np.zeros(num_users, dtype=np.float64)
        for position, (row_users, row_values) in enumerate(rows):
            start, end = int(offsets[position]), int(offsets[position + 1])
            user_ids[start:end] = row_users
            values[start:end] = row_values
            np.maximum.at(bound, row_users, row_values)
        return cls(cluster_id, member_array, offsets, user_ids, values, bound)


@dataclass
class MaterializedStatistics:
    """Serving counters of a :class:`MaterializedProximity`."""

    #: Vector lookups answered from a shard row.
    shard_hits: int = 0
    #: Vector lookups answered from the lazy-refinement overlay.
    overlay_hits: int = 0
    #: Vector lookups that fell through to the wrapped online measure.
    refinements: int = 0
    #: Rows recomputed and written back into their shard by :meth:`repair`.
    repairs: int = 0

    @property
    def lookups(self) -> int:
        """Total number of vector lookups."""
        return self.shard_hits + self.overlay_hits + self.refinements

    def to_dict(self) -> Dict[str, float]:
        """Plain-dict view for stats endpoints and result tables."""
        return {
            "shard_hits": self.shard_hits,
            "overlay_hits": self.overlay_hits,
            "refinements": self.refinements,
            "repairs": self.repairs,
            "lookups": self.lookups,
        }


class MaterializedProximity(ProximityMeasure):
    """Shard-served proximity with lazy online refinement.

    Parameters
    ----------
    inner:
        The proximity measure whose vectors are materialized.  Rows store
        the inner measure's output verbatim, so serving is bit-identical to
        computing online.
    labels:
        Optional cluster label per user (as returned by
        :func:`~repro.graph.partition.label_propagation`).  When omitted,
        :meth:`build` runs label propagation itself.
    cluster_rounds:
        Label-propagation rounds used when ``labels`` is not supplied.
    """

    def __init__(self, inner: ProximityMeasure,
                 labels: Optional[Sequence[int]] = None,
                 cluster_rounds: int = 5) -> None:
        super().__init__(inner.graph, inner.config)
        self.name = f"materialized({inner.name})"
        self._inner = inner
        self._cluster_rounds = max(1, int(cluster_rounds))
        self._labels: Optional[List[int]] = list(labels) if labels is not None else None
        self._shards: Dict[int, ProximityShard] = {}  # guarded-by: _lock
        self._shard_of: Dict[int, int] = {}  # guarded-by: _lock
        self._stale: set = set()  # guarded-by: _lock
        # Lazy-refinement overlay: seeker -> (user_ids, values) sparse row,
        # for seekers without a (fresh) shard row.
        self._overlay: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}  # guarded-by: _lock
        self._lock = threading.RLock()
        self.statistics = MaterializedStatistics()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def inner(self) -> ProximityMeasure:
        """The wrapped online proximity measure."""
        return self._inner

    @property
    def built(self) -> bool:
        """Whether shards have been materialized."""
        return bool(self._shards)

    def labels(self) -> List[int]:
        """Cluster label per user (computing them on first use)."""
        if self._labels is None:
            self._labels = label_propagation(self._graph,
                                             max_rounds=self._cluster_rounds)
        return self._labels

    def shards(self) -> List[ProximityShard]:
        """All materialized shards (largest first is not guaranteed)."""
        return list(self._shards.values())

    def cluster_of(self, seeker: int) -> int:
        """Cluster label of ``seeker`` (labels are stable node ids)."""
        self._graph.validate_user(seeker)
        return int(self.labels()[seeker])

    def num_rows(self) -> int:
        """Number of materialized seeker rows across all shards."""
        return sum(len(shard) for shard in self._shards.values())

    def num_entries(self) -> int:
        """Total stored ``(seeker, user, proximity)`` entries."""
        return sum(shard.num_entries for shard in self._shards.values())

    def memory_bytes(self) -> int:
        """Approximate footprint of all shards plus the overlay."""
        total = sum(shard.memory_bytes() for shard in self._shards.values())
        for user_ids, values in self._overlay.values():
            total += int(user_ids.nbytes + values.nbytes)
        return total

    # ------------------------------------------------------------------ #
    # Offline build
    # ------------------------------------------------------------------ #

    def build(self, seekers: Optional[Iterable[int]] = None) -> int:
        """Materialize shard rows for ``seekers`` (default: every user).

        This is the offline precomputation step — one inner-measure vector
        per seeker, grouped into per-cluster CSR shards with their bound
        vectors.  Returns the number of rows materialized.  Existing shards
        are replaced wholesale, and refinement overlays for the covered
        seekers are dropped (the shard row supersedes them).
        """
        labels = self.labels()
        num_users = self._graph.num_users
        wanted = sorted(set(int(s) for s in (seekers if seekers is not None
                                             else range(num_users))))
        by_cluster: Dict[int, List[int]] = {}
        for seeker in wanted:
            self._graph.validate_user(seeker)
            by_cluster.setdefault(int(labels[seeker]), []).append(seeker)
        shards: Dict[int, ProximityShard] = {}
        shard_of: Dict[int, int] = {}
        for cluster_id in sorted(by_cluster):
            members = by_cluster[cluster_id]
            rows: List[Tuple[np.ndarray, np.ndarray]] = []
            for seeker in members:
                rows.append(_sparse_row(self._inner.vector_array(seeker)))
            shards[cluster_id] = ProximityShard.build(cluster_id, members, rows,
                                                      num_users)
            for seeker in members:
                shard_of[seeker] = cluster_id
        with self._lock:
            self._shards = shards
            self._shard_of = shard_of
            self._stale.clear()
            for seeker in wanted:
                self._overlay.pop(seeker, None)
        return len(wanted)

    def install_shards(self, shards: Sequence[ProximityShard],
                       labels: Optional[Sequence[int]] = None) -> None:
        """Adopt prebuilt shards (the arena load path)."""
        with self._lock:
            if labels is not None:
                self._labels = list(labels)
            self._shards = {shard.cluster_id: shard for shard in shards}
            self._shard_of = {
                int(member): shard.cluster_id
                for shard in shards for member in shard.members.tolist()
            }
            self._stale.clear()
            self._overlay.clear()

    # ------------------------------------------------------------------ #
    # Serving
    # ------------------------------------------------------------------ #

    def _lookup_row(self, seeker: int,
                    count: bool = True) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """The seeker's sparse row from shard or overlay, or ``None``.

        ``count=False`` is the peek mode used by :meth:`frontier_bound`:
        bound probes are not vector fetches and must not inflate the
        hit counters the serving stats report.
        """
        with self._lock:
            if seeker in self._overlay:
                if count:
                    self.statistics.overlay_hits += 1
                return self._overlay[seeker]
            if seeker in self._stale:
                return None
            cluster_id = self._shard_of.get(seeker)
            if cluster_id is None:
                return None
            shard = self._shards[cluster_id]
        position = shard.row_position(seeker)
        if position < 0:
            return None
        if count:
            with self._lock:
                self.statistics.shard_hits += 1
        return shard.row(position)

    def _refine(self, seeker: int) -> Tuple[np.ndarray, np.ndarray]:
        """Compute the seeker's row online and memoise it in the overlay."""
        with obs_span("proximity.refine", seeker=seeker) as refine_span:
            dense = self._inner.vector_array(seeker)
            row = _sparse_row(dense)
            refine_span.set(row_entries=int(row[0].shape[0]))
        with self._lock:
            self.statistics.refinements += 1
            self._overlay[seeker] = row
        return row

    def vector_array(self, seeker: int) -> np.ndarray:
        """Dense proximity array served from the shard row (read-only)."""
        self._graph.validate_user(seeker)
        row = self._lookup_row(seeker)
        if row is None:
            row = self._refine(seeker)
        user_ids, values = row
        dense = np.zeros(self._graph.num_users, dtype=np.float64)
        dense[user_ids] = values
        return dense

    def vector(self, seeker: int) -> Dict[int, float]:
        """Sparse dict view of the shard row (a fresh copy per call)."""
        self._graph.validate_user(seeker)
        row = self._lookup_row(seeker)
        if row is None:
            row = self._refine(seeker)
        user_ids, values = row
        return dict(zip(user_ids.tolist(), values.tolist()))

    def proximity(self, seeker: int, target: int) -> float:
        """Point lookup by binary search in the seeker's row."""
        self._graph.validate_user(target)
        if seeker == target:
            return 1.0
        row = self._lookup_row(seeker)
        if row is None:
            self._graph.validate_user(seeker)
            row = self._refine(seeker)
        user_ids, values = row
        position = int(np.searchsorted(user_ids, target))
        if position < user_ids.shape[0] and int(user_ids[position]) == target:
            return float(values[position])
        return 0.0

    def frontier_bound(self, seeker: int) -> Optional[float]:
        """Exact max proximity from the row — equals the first ranked value.

        A peek, not a fetch: it does not touch the hit counters.
        """
        row = self._lookup_row(seeker, count=False)
        if row is None:
            return None
        values = row[1]
        return float(values.max()) if values.shape[0] else 0.0

    def upper_bound_array(self, seeker: int) -> Optional[np.ndarray]:
        """The seeker's cluster bound vector (admissible, read-only), or ``None``.

        ``bound[v] >= prox(seeker, v)`` for every user ``v``; batched
        execution uses this to prune candidates for a whole cluster with one
        gather instead of one per member.
        """
        with self._lock:
            if seeker in self._stale:
                return None
            cluster_id = self._shard_of.get(seeker)
            if cluster_id is None:
                return None
            return self._shards[cluster_id].bound

    # ------------------------------------------------------------------ #
    # Update-driven invalidation
    # ------------------------------------------------------------------ #

    def invalidate(self, users: Iterable[int]) -> int:
        """Mark the given seekers' rows stale; they refine lazily from now on.

        Mirrors :meth:`repro.proximity.cache.CachedProximity.invalidate` so
        :class:`repro.service.QueryService` can drive either wrapper through
        the same hook.  Invalidation is **cluster-incremental**: only the
        clusters whose members are touched get their bound vector repaired
        in place (re-maximised over the still-fresh rows, which keeps batch
        pruning admissible *and* tight); every other shard is left
        untouched.  Stale rows stay in shard storage — never served, but
        available for :meth:`repair` to overwrite in place.  Returns the
        number of rows newly marked stale or dropped from the overlay.
        """
        removed = 0
        with self._lock:
            touched_clusters = set()
            for user in set(users):
                if self._overlay.pop(user, None) is not None:
                    removed += 1
                if user in self._shard_of and user not in self._stale:
                    self._stale.add(user)
                    touched_clusters.add(self._shard_of[user])
                    removed += 1
            for cluster_id in touched_clusters:
                self._repair_bound(cluster_id)
        return removed

    def _repair_bound(self, cluster_id: int) -> None:
        """Re-maximise one cluster's bound over its fresh rows (lock held).

        Stale members' old rows drop out of the bound (they may under- or
        over-state the post-update proximity and are never served anyway).
        A cluster with no fresh member left keeps its rows with an all-zero
        bound: inert — no lookup serves it — but repairable in place.
        """
        shard = self._shards.get(cluster_id)
        if shard is None:
            return
        bound = np.zeros(self._graph.num_users, dtype=np.float64)
        for position, member in enumerate(shard.members.tolist()):
            if member in self._stale:
                continue
            user_ids, values = shard.row(position)
            np.maximum.at(bound, user_ids, values)
        # In-place for the structure, not the buffer: the old array may be a
        # read-only arena view shared with concurrent readers.
        shard.bound = bound

    def repair(self, users: Iterable[int]) -> int:
        """Recompute stale shard rows online and write them back in place.

        The incremental-maintenance counterpart of :meth:`invalidate`: each
        given seeker that is stale and belongs to a shard gets its row
        recomputed through the wrapped measure (exactly what a fresh
        :meth:`build` would store) and the touched shards are reassembled
        with repaired rows and re-maximised bounds.  Seekers without a
        shard row are ignored — lazy refinement already covers them.
        Returns the number of rows repaired.
        """
        with self._lock:
            targets = sorted(user for user in set(users)
                             if user in self._stale and user in self._shard_of)
        if not targets:
            return 0
        # The online recomputation runs outside the lock: it is the
        # expensive part and must not block concurrent lookups.
        with obs_span("proximity.repair", rows=len(targets)):
            rows = {user: _sparse_row(self._inner.vector_array(user))
                    for user in targets}
        repaired = 0
        with self._lock:
            by_cluster: Dict[int, List[int]] = {}
            for user in targets:
                cluster_id = self._shard_of.get(user)
                if cluster_id is None or user not in self._stale:
                    continue  # raced with a concurrent build/invalidate
                by_cluster.setdefault(cluster_id, []).append(user)
            for cluster_id, members in by_cluster.items():
                shard = self._shards.get(cluster_id)
                if shard is None:
                    continue
                new_rows = []
                repairing = set(members)
                for position, member in enumerate(shard.members.tolist()):
                    if member in repairing:
                        new_rows.append(rows[member])
                    else:
                        new_rows.append(shard.row(position))
                self._shards[cluster_id] = ProximityShard.build(
                    cluster_id, shard.members.tolist(), new_rows,
                    self._graph.num_users)
                for member in members:
                    self._stale.discard(member)
                    self._overlay.pop(member, None)
                    repaired += 1
                if any(m in self._stale for m in shard.members.tolist()):
                    # Some members stay stale: tighten the rebuilt bound so
                    # it excludes their retained (old) rows again.
                    self._repair_bound(cluster_id)
            self.statistics.repairs += repaired
        return repaired

    def graph_updated(self, graph, affected: Iterable[int]) -> int:
        """Incremental rebind: keep every shard, invalidate only ``affected``.

        The drop-everything :meth:`rebind` is the only safe default when the
        caller cannot bound which proximity vectors an edge change reaches.
        When it *can* — hop-bounded measures, where
        :class:`repro.service.QueryService` computes the BFS ball around the
        touched users — this path preserves the materialized fast path
        across the graph swap: labels are extended (each new user gets a
        fresh singleton cluster), bound vectors are zero-padded to the grown
        user domain (admissible: an unaffected seeker has zero proximity to
        a user only reachable over new edges), the wrapped measure is
        rebound, and only the affected seekers' rows go stale.  Returns the
        number of rows invalidated.
        """
        with self._lock:
            self._graph = graph
            if self._labels is not None and graph.num_users > len(self._labels):
                next_label = max(self._labels, default=-1) + 1
                self._labels.extend(
                    range(next_label,
                          next_label + graph.num_users - len(self._labels)))
            for shard in self._shards.values():
                if shard.bound.shape[0] < graph.num_users:
                    shard.bound = np.concatenate([
                        shard.bound,
                        np.zeros(graph.num_users - shard.bound.shape[0],
                                 dtype=np.float64),
                    ])
        self._inner.rebind(graph)
        return self.invalidate(affected)

    def _on_graph_changed(self) -> None:
        # A plain rebind invalidates everything: without a caller-supplied
        # bound on which seekers an edge change reaches (see
        # :meth:`graph_updated`), every shard row is potentially an exact
        # vector of the *old* graph and the cluster structure itself may
        # have shifted.  Serving falls back to lazy refinement until the
        # next offline build().
        with self._lock:
            self._shards.clear()
            self._shard_of.clear()
            self._stale.clear()
            self._overlay.clear()
            self._labels = None
        self._inner.rebind(self._graph)

    def clear(self) -> None:
        """Drop all shards, overlays and statistics (keeps the labels)."""
        with self._lock:
            self._shards.clear()
            self._shard_of.clear()
            self._stale.clear()
            self._overlay.clear()
            self.statistics = MaterializedStatistics()


def _sparse_row(dense: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Sparse ``(user_ids, values)`` of a dense vector's positive entries.

    ``np.nonzero`` returns ascending indices, which is the row order every
    lookup relies on.  Reconstructing a dense array from the pair is exact:
    the dropped entries are exactly the zeros.
    """
    if dense.shape[0] == 0:
        return _EMPTY_IDS, _EMPTY_VALUES
    users = np.nonzero(dense > 0.0)[0].astype(np.int64)
    return users, dense[users].astype(np.float64)


def materialize_measure(inner: ProximityMeasure,
                        cluster_rounds: int = 5,
                        eager: bool = False) -> MaterializedProximity:
    """Wrap ``inner`` in a :class:`MaterializedProximity` (optionally prebuilt)."""
    materialized = MaterializedProximity(inner, cluster_rounds=cluster_rounds)
    if eager:
        materialized.build()
    return materialized
