"""Shortest-path (multiplicative tie strength) proximity.

The proximity of ``target`` to ``seeker`` is the maximum, over all paths
between them, of the product of edge weights along the path, additionally
attenuated by ``decay`` per hop:

``prox(s, v) = max_path  decay^{len(path)} · Π_e w(e)``

This is the classical trust-propagation model: close strong ties help a lot,
distant weak ties barely at all.  The per-hop decay is folded into the edge
distances, so Dijkstra settles users in non-increasing proximity order and
:meth:`iter_ranked` can *stream* them without computing the full vector —
the property the frontier-based top-k algorithms rely on.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Iterator, Optional, Tuple

from ..config import ProximityConfig
from ..graph import SocialGraph
from ..graph.traversal import dijkstra_iter, edge_distance
from .base import ProximityMeasure, register_proximity

#: Proximities below this value are treated as zero by the streaming walk.
PROXIMITY_FLOOR = 1e-4


@register_proximity("shortest-path")
class ShortestPathProximity(ProximityMeasure):
    """Decay-attenuated best-path product proximity."""

    def __init__(self, graph: SocialGraph, config: Optional[ProximityConfig] = None) -> None:
        super().__init__(graph, config)
        self._hop_penalty = -math.log(max(self.config.decay, 1e-12))
        self._max_distance = -math.log(PROXIMITY_FLOOR)

    def iter_ranked(self, seeker: int) -> Iterator[Tuple[int, float]]:
        """Stream users in non-increasing proximity order via Dijkstra."""
        self.graph.validate_user(seeker)
        for node, dist, _hops in dijkstra_iter(
            self.graph, seeker,
            max_distance=self._max_distance,
            max_hops=self.config.max_hops,
            hop_penalty=self._hop_penalty,
        ):
            if node == seeker:
                continue
            proximity = math.exp(-dist)
            if proximity < PROXIMITY_FLOOR:
                return
            yield node, min(1.0, proximity)

    def vector(self, seeker: int) -> Dict[int, float]:
        """Materialise the proximity vector by exhausting the ranked stream."""
        return {user: value for user, value in self.iter_ranked(seeker)}

    def proximity(self, seeker: int, target: int) -> float:
        """Point lookup; streams only until ``target`` is settled."""
        self.graph.validate_user(seeker)
        self.graph.validate_user(target)
        if seeker == target:
            return 1.0
        for user, value in self.iter_ranked(seeker):
            if user == target:
                return value
        return 0.0

    @staticmethod
    def path_proximity(weights: Iterable[float], decay: float = 0.5) -> float:
        """Proximity of an explicit path given its edge weights (helper for tests)."""
        weight_list = list(weights)
        distance = sum(edge_distance(w) for w in weight_list)
        distance += len(weight_list) * -math.log(max(decay, 1e-12))
        return math.exp(-distance)
