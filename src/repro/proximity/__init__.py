"""Social proximity measures: how much a friend's endorsement should count."""

from .base import (
    ProximityMeasure,
    available_proximities,
    create_proximity,
    register_proximity,
)
from .shortest_path import PROXIMITY_FLOOR, ShortestPathProximity
from .pagerank import MonteCarloPageRankProximity, PersonalizedPageRankProximity
from .katz import KatzProximity
from .neighbourhood import (
    AdamicAdarProximity,
    CommonNeighboursProximity,
    JaccardProximity,
)
from .landmarks import LandmarkProximity, select_landmarks
from .cache import CachedProximity, CacheStatistics
from .materialized import (
    MaterializedProximity,
    MaterializedStatistics,
    ProximityShard,
    materialize_measure,
)

__all__ = [
    "ProximityMeasure",
    "register_proximity",
    "create_proximity",
    "available_proximities",
    "ShortestPathProximity",
    "PROXIMITY_FLOOR",
    "PersonalizedPageRankProximity",
    "MonteCarloPageRankProximity",
    "KatzProximity",
    "CommonNeighboursProximity",
    "AdamicAdarProximity",
    "JaccardProximity",
    "LandmarkProximity",
    "select_landmarks",
    "CachedProximity",
    "CacheStatistics",
    "MaterializedProximity",
    "MaterializedStatistics",
    "ProximityShard",
    "materialize_measure",
]
