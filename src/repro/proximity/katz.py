"""Truncated Katz proximity.

Katz proximity counts all paths between the seeker and the target, weighting
a path of length ``ℓ`` by ``beta^ℓ`` (and by the product of its edge
weights).  We truncate the expansion at ``max_hops`` which both bounds the
cost and keeps the measure local — appropriate for "help from friends"
semantics where only the social neighbourhood should matter.

Scores are normalised by the maximum non-seeker entry.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..config import ProximityConfig
from ..graph import SocialGraph
from .base import ProximityMeasure, register_proximity
from .pagerank import _normalise


@register_proximity("katz")
class KatzProximity(ProximityMeasure):
    """Truncated Katz index on the weighted adjacency."""

    def __init__(self, graph: SocialGraph, config: Optional[ProximityConfig] = None) -> None:
        super().__init__(graph, config)

    def vector(self, seeker: int) -> Dict[int, float]:
        """Sum ``beta^ℓ``-weighted walk contributions up to ``max_hops`` hops."""
        graph = self.graph
        graph.validate_user(seeker)
        n = graph.num_users
        beta = self.config.katz_beta
        # current[v] = total weighted count of walks of the current length
        # from the seeker to v.
        current = np.zeros(n, dtype=np.float64)
        current[seeker] = 1.0
        accumulated = np.zeros(n, dtype=np.float64)
        factor = 1.0
        for _hop in range(self.config.max_hops):
            nxt = np.zeros(n, dtype=np.float64)
            for u in np.nonzero(current > 0.0)[0].tolist():
                mass = current[u]
                nbrs, weights = graph.neighbours(int(u))
                if nbrs.shape[0] == 0:
                    continue
                np.add.at(nxt, nbrs, mass * weights)
            factor *= beta
            accumulated += factor * nxt
            current = nxt
            if not np.any(current > 0.0):
                break
        result = {
            int(user): float(score)
            for user, score in enumerate(accumulated.tolist())
            if user != seeker and score > 0.0
        }
        return _normalise(result)
