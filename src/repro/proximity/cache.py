"""LRU cache wrapper around a proximity measure.

Repeated queries from the same seeker recompute the same proximity vector.
:class:`CachedProximity` memoises the per-seeker vector with an LRU policy
and exposes hit/miss counters, so the ablation experiment (Figure 9) can
quantify how much of the latency is proximity recomputation.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

from .base import ProximityMeasure


@dataclass
class CacheStatistics:
    """Hit/miss counters of a :class:`CachedProximity`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        """Total number of vector lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache."""
        return self.hits / self.lookups if self.lookups else 0.0

    def to_dict(self) -> Dict[str, float]:
        """Plain-dict view for result tables."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


class CachedProximity(ProximityMeasure):
    """Memoising decorator for any :class:`ProximityMeasure`.

    Parameters
    ----------
    inner:
        The proximity measure to wrap.
    capacity:
        Maximum number of seeker vectors kept; 0 disables caching entirely
        (every call is a miss), which is useful for ablations.
    """

    def __init__(self, inner: ProximityMeasure, capacity: int = 128) -> None:
        super().__init__(inner.graph, inner.config)
        self.name = f"cached({inner.name})"
        self._inner = inner
        self._capacity = max(0, int(capacity))
        self._cache: "OrderedDict[int, Dict[int, float]]" = OrderedDict()
        self._ranked_cache: "OrderedDict[int, Tuple[Tuple[int, float], ...]]" = OrderedDict()
        self.statistics = CacheStatistics()

    @property
    def inner(self) -> ProximityMeasure:
        """The wrapped proximity measure."""
        return self._inner

    def _get_cached(self, store: OrderedDict, seeker: int):
        if seeker in store:
            store.move_to_end(seeker)
            self.statistics.hits += 1
            return store[seeker]
        self.statistics.misses += 1
        return None

    def _put_cached(self, store: OrderedDict, seeker: int, value) -> None:
        if self._capacity == 0:
            return
        store[seeker] = value
        store.move_to_end(seeker)
        if len(store) > self._capacity:
            store.popitem(last=False)
            self.statistics.evictions += 1

    def vector(self, seeker: int) -> Dict[int, float]:
        """Return the (possibly cached) proximity vector of ``seeker``."""
        cached = self._get_cached(self._cache, seeker)
        if cached is not None:
            return dict(cached)
        vector = self._inner.vector(seeker)
        self._put_cached(self._cache, seeker, dict(vector))
        return vector

    def iter_ranked(self, seeker: int) -> Iterator[Tuple[int, float]]:
        """Yield the cached ranked stream, materialising it on first use."""
        cached = self._get_cached(self._ranked_cache, seeker)
        if cached is not None:
            yield from cached
            return
        ranked = tuple(self._inner.iter_ranked(seeker))
        self._put_cached(self._ranked_cache, seeker, ranked)
        yield from ranked

    def proximity(self, seeker: int, target: int) -> float:
        """Point lookup served from the cached vector."""
        if seeker == target:
            return 1.0
        return self.vector(seeker).get(target, 0.0)

    def clear(self) -> None:
        """Drop all cached vectors and reset the statistics."""
        self._cache.clear()
        self._ranked_cache.clear()
        self.statistics = CacheStatistics()
