"""LRU cache wrapper around a proximity measure.

Repeated queries from the same seeker recompute the same proximity vector.
:class:`CachedProximity` memoises the per-seeker vector with an LRU policy
and exposes hit/miss counters, so the ablation experiment (Figure 9) can
quantify how much of the latency is proximity recomputation.

The cache is update-aware: when :class:`~repro.storage.updates.DatasetUpdater`
adds friendship edges, callers invalidate the affected seekers with
:meth:`CachedProximity.invalidate` (or :meth:`CachedProximity.clear`) and
rebind the wrapped measure to the rebuilt graph with
:meth:`~repro.proximity.base.ProximityMeasure.rebind`, instead of silently
serving pre-update vectors.  All cache operations take an internal lock so
the wrapper can be shared by the concurrent query threads of
:class:`repro.service.QueryService`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Tuple

from .base import ProximityMeasure


@dataclass
class CacheStatistics:
    """Hit/miss counters of a :class:`CachedProximity`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        """Total number of vector lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache."""
        return self.hits / self.lookups if self.lookups else 0.0

    def to_dict(self) -> Dict[str, float]:
        """Plain-dict view for result tables."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_rate": self.hit_rate,
        }


class CachedProximity(ProximityMeasure):
    """Memoising decorator for any :class:`ProximityMeasure`.

    Parameters
    ----------
    inner:
        The proximity measure to wrap.
    capacity:
        Maximum number of seeker vectors kept; 0 disables caching entirely
        (every call is a miss), which is useful for ablations.
    """

    def __init__(self, inner: ProximityMeasure, capacity: int = 128) -> None:
        super().__init__(inner.graph, inner.config)
        self.name = f"cached({inner.name})"
        self._inner = inner
        self._capacity = max(0, int(capacity))
        self._cache: "OrderedDict[int, Dict[int, float]]" = OrderedDict()
        self._ranked_cache: "OrderedDict[int, Tuple[Tuple[int, float], ...]]" = OrderedDict()
        self._lock = threading.RLock()
        # Invalidation epoch: a vector computed concurrently with an
        # invalidation or a graph rebind may reflect the pre-update graph,
        # so puts from an older generation are dropped.
        self._generation = 0
        self.statistics = CacheStatistics()

    @property
    def inner(self) -> ProximityMeasure:
        """The wrapped proximity measure."""
        return self._inner

    def __len__(self) -> int:
        """Number of seekers with a cached vector."""
        with self._lock:
            return len(self._cache)

    def _get_cached(self, store: OrderedDict, seeker: int):
        with self._lock:
            if seeker in store:
                store.move_to_end(seeker)
                self.statistics.hits += 1
                return store[seeker]
            self.statistics.misses += 1
            return None

    def _put_cached(self, store: OrderedDict, seeker: int, value,
                    generation: int) -> None:
        if self._capacity == 0:
            return
        with self._lock:
            if generation != self._generation:
                return
            store[seeker] = value
            store.move_to_end(seeker)
            if len(store) > self._capacity:
                store.popitem(last=False)
                self.statistics.evictions += 1

    def vector(self, seeker: int) -> Dict[int, float]:
        """Return the (possibly cached) proximity vector of ``seeker``."""
        cached = self._get_cached(self._cache, seeker)
        if cached is not None:
            return dict(cached)
        generation = self._generation
        vector = self._inner.vector(seeker)
        self._put_cached(self._cache, seeker, dict(vector), generation)
        return vector

    def iter_ranked(self, seeker: int) -> Iterator[Tuple[int, float]]:
        """Yield the cached ranked stream, materialising it on first use."""
        cached = self._get_cached(self._ranked_cache, seeker)
        if cached is not None:
            yield from cached
            return
        generation = self._generation
        ranked = tuple(self._inner.iter_ranked(seeker))
        self._put_cached(self._ranked_cache, seeker, ranked, generation)
        yield from ranked

    def proximity(self, seeker: int, target: int) -> float:
        """Point lookup served from the cached vector."""
        if seeker == target:
            return 1.0
        return self.vector(seeker).get(target, 0.0)

    # ------------------------------------------------------------------ #
    # Update-driven invalidation
    # ------------------------------------------------------------------ #

    def invalidate(self, users: Iterable[int]) -> int:
        """Drop the cached vectors of the given seekers.

        Called after a graph update for every seeker whose proximity
        neighbourhood the update may have changed.  Returns the number of
        cache entries removed (vector and ranked entries counted
        separately).
        """
        removed = 0
        with self._lock:
            self._generation += 1
            for user in set(users):
                if self._cache.pop(user, None) is not None:
                    removed += 1
                if self._ranked_cache.pop(user, None) is not None:
                    removed += 1
            self.statistics.invalidations += removed
        return removed

    def _on_graph_changed(self) -> None:
        # Rebinding does NOT clear the cache: entries for seekers outside
        # the update's proximity horizon are still exact, and the caller
        # (QueryService, or whoever drives the updater) evicts the affected
        # seekers via invalidate()/clear().  The inner measure must see the
        # new graph so that post-invalidation misses recompute freshly, and
        # the generation bump drops vectors still being computed on the old
        # graph.
        with self._lock:
            self._generation += 1
        self._inner.rebind(self._graph)

    def clear(self) -> None:
        """Drop all cached vectors and reset the statistics."""
        with self._lock:
            self._generation += 1
            self._cache.clear()
            self._ranked_cache.clear()
            self.statistics = CacheStatistics()
