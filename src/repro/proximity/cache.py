"""LRU cache wrapper around a proximity measure.

Repeated queries from the same seeker recompute the same proximity vector.
:class:`CachedProximity` memoises the per-seeker vector with an LRU policy
and exposes hit/miss counters, so the ablation experiment (Figure 9) can
quantify how much of the latency is proximity recomputation.

Entries are stored as **dense numpy arrays** (one float per user): that is
the form the vectorized scoring kernels consume directly via
:meth:`vector_array`, and the dict form handed to the scalar algorithms is
derived from the cached array on demand.  A second small cache keeps the
ranked ``(user, proximity)`` streams used by frontier expansion.

The cache is update-aware: when :class:`~repro.storage.updates.DatasetUpdater`
adds friendship edges, callers invalidate the affected seekers with
:meth:`CachedProximity.invalidate` (or :meth:`CachedProximity.clear`) and
rebind the wrapped measure to the rebuilt graph with
:meth:`~repro.proximity.base.ProximityMeasure.rebind`, instead of silently
serving pre-update vectors.  All cache operations take an internal lock so
the wrapper can be shared by the concurrent query threads of
:class:`repro.service.QueryService`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from .base import ProximityMeasure


def _sparse_from_dense(dense: np.ndarray) -> Dict[int, float]:
    """Bulk dict view of a dense proximity array's positive entries."""
    users = np.nonzero(dense > 0.0)[0]
    return dict(zip(users.tolist(), dense[users].tolist()))


@dataclass
class CacheStatistics:
    """Hit/miss counters of a :class:`CachedProximity`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0
    #: Number of times the sparse dict view was derived from a dense array.
    #: At most one derivation should happen per cached entry; the regression
    #: test for the re-derivation bug asserts on this counter.
    sparse_derivations: int = 0

    @property
    def lookups(self) -> int:
        """Total number of vector lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache."""
        return self.hits / self.lookups if self.lookups else 0.0

    def to_dict(self) -> Dict[str, float]:
        """Plain-dict view for result tables."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "sparse_derivations": self.sparse_derivations,
            "hit_rate": self.hit_rate,
        }


class CachedProximity(ProximityMeasure):
    """Memoising decorator for any :class:`ProximityMeasure`.

    Parameters
    ----------
    inner:
        The proximity measure to wrap.
    capacity:
        Maximum number of seeker vectors kept; 0 disables caching entirely
        (every call is a miss), which is useful for ablations.
    """

    def __init__(self, inner: ProximityMeasure, capacity: int = 128) -> None:
        super().__init__(inner.graph, inner.config)
        self.name = f"cached({inner.name})"
        self._inner = inner
        self._capacity = max(0, int(capacity))
        # One entry per seeker: [dense array, lazily derived sparse dict].
        # Keeping both forms in the same slot means LRU eviction and
        # invalidation treat them as one cached vector.
        self._cache: "OrderedDict[int, List[object]]" = OrderedDict()  # guarded-by: _lock
        self._ranked_cache: "OrderedDict[int, Tuple[Tuple[int, float], ...]]" = OrderedDict()  # guarded-by: _lock
        self._lock = threading.RLock()
        # Invalidation epoch: a vector computed concurrently with an
        # invalidation or a graph rebind may reflect the pre-update graph,
        # so puts from an older generation are dropped.
        self._generation = 0  # guarded-by: _lock
        self.statistics = CacheStatistics()

    @property
    def inner(self) -> ProximityMeasure:
        """The wrapped proximity measure."""
        return self._inner

    def __len__(self) -> int:
        """Number of seekers with a cached vector."""
        with self._lock:
            return len(self._cache)

    def _get_cached(self, store: OrderedDict, seeker: int):
        with self._lock:
            if seeker in store:
                store.move_to_end(seeker)
                self.statistics.hits += 1
                return store[seeker]
            self.statistics.misses += 1
            return None

    def _put_cached(self, store: OrderedDict, seeker: int, value,
                    generation: int) -> None:
        if self._capacity == 0:
            return
        with self._lock:
            if generation != self._generation:
                return
            store[seeker] = value
            store.move_to_end(seeker)
            if len(store) > self._capacity:
                store.popitem(last=False)
                self.statistics.evictions += 1

    def _lookup_entry(self, seeker: int) -> Optional[List[object]]:
        """Cached [dense, sparse] entry of ``seeker``, counting hit/miss."""
        num_users = self._graph.num_users
        with self._lock:
            entry = self._cache.get(seeker)
            if entry is not None and entry[0].shape[0] == num_users:  # type: ignore[union-attr]
                self._cache.move_to_end(seeker)
                self.statistics.hits += 1
                return entry
            if entry is not None:
                # Stale length: the graph gained users since this entry was
                # cached (rebind without invalidation is legal for seekers
                # outside the update horizon, but the dense form must match
                # the current user count).
                del self._cache[seeker]
            self.statistics.misses += 1
            return None

    def _compute_entry(self, seeker: int) -> List[object]:
        generation = self._generation
        dense = self._inner.vector_array(seeker)
        entry: List[object] = [dense, None]
        self._put_cached(self._cache, seeker, entry, generation)
        return entry

    def _entry_from_ranked(self, seeker: int) -> Optional[List[object]]:
        """Derive a dense entry from a cached ranked stream (no inner call).

        The ranked tuple holds exactly the vector's ``(user, value)`` pairs,
        so scattering them into zeros reproduces ``inner.vector_array``
        bit for bit — a warm ranked cache means the online computation need
        not run again just to obtain the dense form.
        """
        with self._lock:
            ranked = self._ranked_cache.get(seeker)
            generation = self._generation
        if ranked is None:
            return None
        dense = np.zeros(self._graph.num_users, dtype=np.float64)
        for user, value in ranked:
            dense[user] = value
        entry: List[object] = [dense, None]
        self._put_cached(self._cache, seeker, entry, generation)
        return entry

    def vector_array(self, seeker: int) -> np.ndarray:
        """The (possibly cached) dense proximity array of ``seeker``.

        The returned array is the cache's own storage and must be treated as
        read-only; the seeker's entry is always 0.
        """
        entry = self._lookup_entry(seeker)
        if entry is None:
            entry = self._entry_from_ranked(seeker)
        if entry is None:
            entry = self._compute_entry(seeker)
        return entry[0]  # type: ignore[return-value]

    def vector(self, seeker: int) -> Dict[int, float]:
        """Sparse dict view of the cached vector (a fresh copy per call).

        The dict form is derived from the dense array once per cached entry
        and memoised alongside it, so repeat scalar-path lookups pay one
        dict copy — not an O(num_users) rebuild.
        """
        entry = self._lookup_entry(seeker)
        if entry is None:
            entry = self._entry_from_ranked(seeker)
        if entry is None:
            entry = self._compute_entry(seeker)
        sparse = entry[1]
        if sparse is None:
            sparse = _sparse_from_dense(entry[0])  # type: ignore[arg-type]
            entry[1] = sparse
            with self._lock:
                self.statistics.sparse_derivations += 1
        return dict(sparse)  # type: ignore[arg-type]

    def iter_ranked(self, seeker: int) -> Iterator[Tuple[int, float]]:
        """Yield the cached ranked stream, materialising it on first use."""
        cached = self._get_cached(self._ranked_cache, seeker)
        if cached is not None:
            yield from cached
            return
        generation = self._generation
        ranked = tuple(self._inner.iter_ranked(seeker))
        self._put_cached(self._ranked_cache, seeker, ranked, generation)
        yield from ranked

    def frontier_bound(self, seeker: int) -> Optional[float]:
        """Max proximity of the seeker when a cached entry exists (else ``None``).

        The dense entry's maximum is exactly the first value of the ranked
        stream, so a warm cache lets :class:`SocialFrontier` answer
        termination tests without re-materialising the stream.  The lookup
        is not charged as a hit or miss — it is a peek, not a vector fetch.
        """
        with self._lock:
            ranked = self._ranked_cache.get(seeker)
            if ranked is not None:
                return float(ranked[0][1]) if ranked else 0.0
            entry = self._cache.get(seeker)
            if entry is not None and entry[0].shape[0] == self._graph.num_users:  # type: ignore[union-attr]
                dense = entry[0]
                return float(dense.max()) if dense.shape[0] else 0.0  # type: ignore[union-attr]
        return None

    def proximity(self, seeker: int, target: int) -> float:
        """Point lookup served from the cached dense array."""
        if seeker == target:
            return 1.0
        self._graph.validate_user(target)
        return float(self.vector_array(seeker)[target])

    # ------------------------------------------------------------------ #
    # Update-driven invalidation
    # ------------------------------------------------------------------ #

    def invalidate(self, users: Iterable[int]) -> int:
        """Drop the cached vectors of the given seekers.

        Called after a graph update for every seeker whose proximity
        neighbourhood the update may have changed.  Returns the number of
        cache entries removed (vector and ranked entries counted
        separately).
        """
        removed = 0
        with self._lock:
            self._generation += 1
            for user in set(users):
                if self._cache.pop(user, None) is not None:
                    removed += 1
                if self._ranked_cache.pop(user, None) is not None:
                    removed += 1
            self.statistics.invalidations += removed
        return removed

    def _on_graph_changed(self) -> None:
        # Rebinding does NOT clear the cache: entries for seekers outside
        # the update's proximity horizon are still exact, and the caller
        # (QueryService, or whoever drives the updater) evicts the affected
        # seekers via invalidate()/clear().  The inner measure must see the
        # new graph so that post-invalidation misses recompute freshly, and
        # the generation bump drops vectors still being computed on the old
        # graph.
        with self._lock:
            self._generation += 1
        self._inner.rebind(self._graph)

    def clear(self) -> None:
        """Drop all cached vectors and reset the statistics."""
        with self._lock:
            self._generation += 1
            self._cache.clear()
            self._ranked_cache.clear()
            self.statistics = CacheStatistics()
