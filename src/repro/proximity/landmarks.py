"""Landmark-based proximity sketches (the approximate serving tier).

Computing exact shortest-path proximity from every seeker is wasteful when
queries arrive from many different users.  The landmark sketch picks a small
set of high-degree *landmark* users, precomputes exact distances from each
landmark to every user (one Dijkstra per landmark), and approximates the
distance between any pair by triangulation through the best landmark:

``dist(s, v) ≈ min_L dist(s, L) + dist(L, v)``

This over-estimates distances (under-estimates proximity), so it is an
admissible approximation for pruning.  The sketch is the reconstruction of
the "precomputation vs. on-line computation" trade-off the paper family
discusses.

The sketch state is two dense arrays — ``(num_landmarks, num_users)``
distances and hop counts — so a seeker's whole estimate vector is a few
vectorized ops over landmark rows, and the arrays persist directly as the
arena's ``landmark.*`` section (:func:`repro.storage.arena.build_arena`).
Graph updates never recompute landmark rows on the serving path: the
touched seekers are marked stale and served an exact Dijkstra row from a
delta overlay until the next offline rebuild, and users added after the
sketch was built are unreachable through it (an admissible under-estimate)
except for their exact direct friends.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from ..config import ProximityConfig
from ..errors import PersistenceError
from ..graph import SocialGraph
from ..graph.traversal import dijkstra_iter
from .base import ProximityMeasure, register_proximity

#: Sketch proximities at or below this value are treated as zero (direct
#: friends are exempt: their exact value is always served).
SKETCH_FLOOR = 1e-6


def select_landmarks(graph: SocialGraph, num_landmarks: int, seed: int = 0,
                     strategy: str = "degree") -> List[int]:
    """Pick landmark users.

    ``"degree"`` picks the highest-degree users (good coverage of hubs),
    breaking degree ties by ascending user id — a total order, so the
    landmark set (and everything derived from it, including arena bytes)
    is reproducible across numpy versions.  ``"random"`` samples uniformly.
    """
    num_landmarks = max(1, min(num_landmarks, graph.num_users))
    if strategy == "random":
        rng = np.random.default_rng(seed)
        return sorted(int(u) for u in rng.choice(graph.num_users, size=num_landmarks,
                                                 replace=False))
    degrees = graph.degrees()
    # np.lexsort is always stable; the last key is primary, so this orders
    # by (-degree, user id) exactly.
    order = np.lexsort((np.arange(degrees.shape[0], dtype=np.int64),
                        -degrees))
    return [int(u) for u in order[:num_landmarks].tolist()]


@register_proximity("landmark")
class LandmarkProximity(ProximityMeasure):
    """Triangulated shortest-path proximity through precomputed landmarks.

    Parameters
    ----------
    graph / config:
        The usual measure pair; ``config.decay`` sets the per-hop penalty
        and ``config.landmarks`` the default sketch size.
    num_landmarks:
        Overrides ``config.landmarks`` when given.
    seed / strategy:
        Forwarded to :func:`select_landmarks`.
    """

    def __init__(self, graph: SocialGraph, config: Optional[ProximityConfig] = None,
                 num_landmarks: Optional[int] = None, seed: int = 0,
                 strategy: str = "degree") -> None:
        super().__init__(graph, config)
        self._hop_penalty = -math.log(max(self.config.decay, 1e-12))
        if num_landmarks is None:
            num_landmarks = self.config.landmarks or 16
        self._num_landmarks = max(1, int(num_landmarks))
        self._seed = seed
        self._strategy = strategy
        #: Seekers whose sketch rows are invalid after a graph update; they
        #: are served exact rows from the overlay until a rebuild.
        self._stale: Set[int] = set()
        #: Memoised exact rows of stale (or sketch-unknown) seekers.
        self._overlay: Dict[int, np.ndarray] = {}
        self._on_graph_changed()

    # ------------------------------------------------------------------ #
    # Sketch construction / persistence
    # ------------------------------------------------------------------ #

    def _on_graph_changed(self) -> None:
        graph = self.graph
        landmarks = select_landmarks(graph, self._num_landmarks,
                                     seed=self._seed, strategy=self._strategy)
        num_users = graph.num_users
        distances = np.full((len(landmarks), num_users), np.inf,
                            dtype=np.float64)
        hops = np.zeros((len(landmarks), num_users), dtype=np.int64)
        # Exact (distance, hops) rows from every landmark; the one-off
        # precomputation the sketch trades for cheap per-query estimates.
        for row, landmark in enumerate(landmarks):
            for node, dist, hop in dijkstra_iter(graph, landmark):
                distances[row, node] = dist
                hops[row, node] = hop
        self._landmark_ids = np.array(landmarks, dtype=np.int64)
        self._distances = distances
        self._hops = hops
        self._stale.clear()
        self._overlay.clear()

    @property
    def landmarks(self) -> List[int]:
        """The selected landmark user ids."""
        return [int(u) for u in self._landmark_ids.tolist()]

    @property
    def num_landmarks(self) -> int:
        """Number of landmarks in the sketch."""
        return int(self._landmark_ids.shape[0])

    @property
    def seed(self) -> int:
        """Selection seed (recorded in the arena's landmark metadata)."""
        return self._seed

    @property
    def strategy(self) -> str:
        """Selection strategy (recorded in the arena's landmark metadata)."""
        return self._strategy

    def sketch_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The persistable sketch state: ``(landmark_ids, distances, hops)``.

        The arrays are the live sketch (treat as read-only); the arena
        writer persists them as the ``landmark.*`` section.
        """
        return self._landmark_ids, self._distances, self._hops

    def install_sketch(self, landmark_ids: np.ndarray, distances: np.ndarray,
                       hops: np.ndarray) -> None:
        """Adopt a precomputed sketch (the arena attach path).

        Replaces the arrays built at construction; the overlay and stale
        set reset because the installed sketch is a fresh generation.
        """
        landmark_ids = np.asarray(landmark_ids, dtype=np.int64)
        distances = np.asarray(distances, dtype=np.float64)
        hops = np.asarray(hops, dtype=np.int64)
        if distances.shape != hops.shape \
                or distances.shape[0] != landmark_ids.shape[0]:
            raise PersistenceError(
                "landmark sketch arrays disagree: "
                f"ids {landmark_ids.shape}, distances {distances.shape}, "
                f"hops {hops.shape}")
        if distances.shape[1] != self.graph.num_users:
            raise PersistenceError(
                f"landmark sketch covers {distances.shape[1]} users but the "
                f"graph has {self.graph.num_users}")
        self._landmark_ids = landmark_ids
        self._distances = distances
        self._hops = hops
        self._num_landmarks = int(landmark_ids.shape[0])
        self._stale.clear()
        self._overlay.clear()

    # ------------------------------------------------------------------ #
    # Estimation
    # ------------------------------------------------------------------ #

    def vector_array(self, seeker: int) -> np.ndarray:
        """Dense triangulated proximity estimates, one vectorized pass.

        The per-target estimate replays the scalar rule exactly: best
        landmark by first-minimum summed distance, per-hop decay charged on
        the (over-counted) estimated hop count, a small floor, and exact
        values for direct friends.  Stale seekers (graph updates) are
        served their memoised exact overlay row instead.
        """
        self.graph.validate_user(seeker)
        overlay = self._overlay_row(seeker)
        if overlay is not None:
            return overlay
        num_users = self.graph.num_users
        width = int(self._distances.shape[1])
        seeker_distances = self._distances[:, seeker]
        estimates = seeker_distances[:, None] + self._distances
        best = np.argmin(estimates, axis=0)
        columns = np.arange(width, dtype=np.int64)
        distance = estimates[best, columns]
        hop_counts = self._hops[:, seeker][best] + self._hops[best, columns]
        # Charge the per-hop decay on the estimated (over-counted) hop
        # count so the sketch never exceeds the exact shortest-path
        # proximity — an admissible under-estimate.
        penalty = np.maximum(hop_counts, 1) * self._hop_penalty
        proximity = np.exp(-(distance + penalty))
        proximity = np.where(proximity > SKETCH_FLOOR,
                             np.minimum(proximity, 1.0), 0.0)
        dense = np.zeros(num_users, dtype=np.float64)
        dense[:width] = proximity[:num_users]
        dense[seeker] = 0.0
        return self._apply_direct(dense, seeker)

    def _apply_direct(self, dense: np.ndarray, seeker: int) -> np.ndarray:
        """Exact proximity for direct friends: triangulation is needlessly
        pessimistic one hop away and direct ties matter most."""
        nbrs, weights = self.graph.neighbours(seeker)
        if nbrs.shape[0]:
            direct = np.exp(-(-np.log(np.maximum(weights, 1e-12))
                              + self._hop_penalty))
            dense[nbrs] = np.maximum(dense[nbrs], np.minimum(direct, 1.0))
        return dense

    def vector(self, seeker: int) -> Dict[int, float]:
        """Estimate proximity to every user reachable through some landmark."""
        dense = self.vector_array(seeker)
        nonzero = np.nonzero(dense)[0]
        return {int(user): float(dense[user]) for user in nonzero}

    # ------------------------------------------------------------------ #
    # Delta overlay (graph updates)
    # ------------------------------------------------------------------ #

    def _overlay_row(self, seeker: int) -> Optional[np.ndarray]:
        row = self._overlay.get(seeker)
        if row is not None:
            return row
        if seeker not in self._stale and seeker < self._distances.shape[1]:
            return None
        row = self._exact_row(seeker)
        self._overlay[seeker] = row
        return row

    def _exact_row(self, seeker: int) -> np.ndarray:
        """An exact per-seeker proximity row (the overlay's contents).

        Exact rows are trivially admissible — the sketch only ever serves
        *at most* the exact value, and these serve exactly it.
        """
        dense = np.zeros(self.graph.num_users, dtype=np.float64)
        for node, dist, _hop in dijkstra_iter(
                self.graph, seeker,
                max_distance=-math.log(SKETCH_FLOOR),
                hop_penalty=self._hop_penalty):
            if node == seeker:
                continue
            value = math.exp(-dist)
            if value > SKETCH_FLOOR:
                dense[node] = min(1.0, value)
        return self._apply_direct(dense, seeker)

    def invalidate(self, users: Iterable[int]) -> None:
        """Mark seekers' sketch rows invalid (served exact until rebuilt)."""
        for user in users:
            user = int(user)
            if user >= 0:
                self._stale.add(user)
                self._overlay.pop(user, None)

    def graph_updated(self, graph: SocialGraph, affected: Iterable[int]) -> None:
        """Adopt an updated graph without recomputing landmark rows.

        New users are unreachable through the frozen sketch (inf distance —
        an admissible under-estimate; their direct friendships are still
        exact through the override), and ``affected`` seekers go stale.
        """
        self._graph = graph
        width = int(self._distances.shape[1])
        if graph.num_users > width:
            grow = graph.num_users - width
            rows = int(self._distances.shape[0])
            self._distances = np.concatenate(
                [self._distances,
                 np.full((rows, grow), np.inf, dtype=np.float64)], axis=1)
            self._hops = np.concatenate(
                [self._hops, np.zeros((rows, grow), dtype=np.int64)], axis=1)
        self.invalidate(affected)

    @property
    def stale_seekers(self) -> int:
        """Number of seekers currently served from the exact overlay path."""
        return len(self._stale)

    # ------------------------------------------------------------------ #
    # Accounting
    # ------------------------------------------------------------------ #

    def memory_bytes(self) -> int:
        """Memory held by the dense sketch arrays (overlay rows included)."""
        total = (self._landmark_ids.nbytes + self._distances.nbytes
                 + self._hops.nbytes)
        total += sum(row.nbytes for row in self._overlay.values())
        return total
