"""Landmark-based proximity sketches.

Computing exact shortest-path proximity from every seeker is wasteful when
queries arrive from many different users.  The landmark sketch picks a small
set of high-degree *landmark* users, precomputes exact distances from each
landmark to every user (one Dijkstra per landmark), and approximates the
distance between any pair by triangulation through the best landmark:

``dist(s, v) ≈ min_L dist(s, L) + dist(L, v)``

This over-estimates distances (under-estimates proximity), so it is an
admissible approximation for pruning.  The sketch is the reconstruction of
the "precomputation vs. on-line computation" trade-off the paper family
discusses.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..config import ProximityConfig
from ..graph import SocialGraph
from ..graph.traversal import dijkstra_iter
from .base import ProximityMeasure, register_proximity


def select_landmarks(graph: SocialGraph, num_landmarks: int, seed: int = 0,
                     strategy: str = "degree") -> List[int]:
    """Pick landmark users.

    ``"degree"`` picks the highest-degree users (good coverage of hubs);
    ``"random"`` samples uniformly.
    """
    num_landmarks = max(1, min(num_landmarks, graph.num_users))
    if strategy == "random":
        rng = np.random.default_rng(seed)
        return sorted(int(u) for u in rng.choice(graph.num_users, size=num_landmarks,
                                                 replace=False))
    degrees = graph.degrees()
    order = np.argsort(-degrees, kind="stable")
    return [int(u) for u in order[:num_landmarks].tolist()]


@register_proximity("landmark")
class LandmarkProximity(ProximityMeasure):
    """Triangulated shortest-path proximity through precomputed landmarks."""

    def __init__(self, graph: SocialGraph, config: Optional[ProximityConfig] = None,
                 num_landmarks: int = 16, seed: int = 0,
                 strategy: str = "degree") -> None:
        super().__init__(graph, config)
        self._hop_penalty = -math.log(max(self.config.decay, 1e-12))
        self._num_landmarks = num_landmarks
        self._seed = seed
        self._strategy = strategy
        self._on_graph_changed()

    def _on_graph_changed(self) -> None:
        graph = self.graph
        self._landmarks = select_landmarks(graph, self._num_landmarks,
                                           seed=self._seed, strategy=self._strategy)
        # Exact (distance, hops) maps from every landmark; the one-off
        # precomputation the sketch trades for cheap per-query estimates.
        self._distance_maps: List[Dict[int, Tuple[float, int]]] = [
            {node: (dist, hops) for node, dist, hops in dijkstra_iter(graph, landmark)}
            for landmark in self._landmarks
        ]

    @property
    def landmarks(self) -> List[int]:
        """The selected landmark user ids."""
        return list(self._landmarks)

    def _estimate(self, target: int,
                  seeker_entries: List[Tuple[float, int]]) -> Tuple[float, int]:
        """Best ``(distance, hops)`` estimate via any landmark (inf when unreachable)."""
        best_distance = math.inf
        best_hops = 0
        for landmark_index, (seeker_distance, seeker_hops) in enumerate(seeker_entries):
            if math.isinf(seeker_distance):
                continue
            target_entry = self._distance_maps[landmark_index].get(target)
            if target_entry is None:
                continue
            distance = seeker_distance + target_entry[0]
            if distance < best_distance:
                best_distance = distance
                best_hops = seeker_hops + target_entry[1]
        return best_distance, best_hops

    def vector(self, seeker: int) -> Dict[int, float]:
        """Estimate proximity to every user reachable through some landmark."""
        self.graph.validate_user(seeker)
        seeker_entries = [
            distances.get(seeker, (math.inf, 0)) for distances in self._distance_maps
        ]
        candidates: Dict[int, float] = {}
        for distances in self._distance_maps:
            for user in distances:
                if user != seeker:
                    candidates.setdefault(user, math.inf)
        result: Dict[int, float] = {}
        for target in candidates:
            distance, hops = self._estimate(target, seeker_entries)
            if math.isinf(distance):
                continue
            # Charge the per-hop decay on the estimated (over-counted) hop
            # count so the sketch never exceeds the exact shortest-path
            # proximity — an admissible under-estimate.
            proximity = math.exp(-(distance + max(1, hops) * self._hop_penalty))
            if proximity > 1e-6:
                result[target] = min(1.0, proximity)
        # Exact proximity for direct friends: triangulation is needlessly
        # pessimistic one hop away and direct ties matter most.
        nbrs, weights = self.graph.neighbours(seeker)
        for v, w in zip(nbrs.tolist(), weights.tolist()):
            direct = math.exp(-(-math.log(max(w, 1e-12)) + self._hop_penalty))
            result[int(v)] = max(result.get(int(v), 0.0), min(1.0, direct))
        return result

    def memory_bytes(self) -> int:
        """Approximate memory used by the precomputed distance maps."""
        entries = sum(len(distances) for distances in self._distance_maps)
        return entries * 16  # int key + float value, dict overhead ignored
