"""Neighbourhood-overlap proximity measures.

These measures only look one hop around the seeker and the target, which
makes them cheap but myopic: they assign zero proximity to anyone who is not
a friend or a friend-of-friend.  They serve as the "local" end of the
proximity spectrum in the Figure-8 style experiment.

* :class:`CommonNeighboursProximity` — count of shared friends (plus direct
  friendship bonus), normalised.
* :class:`AdamicAdarProximity` — shared friends weighted by the inverse log
  degree of the shared friend.
* :class:`JaccardProximity` — Jaccard overlap of friend sets.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Set

from ..config import ProximityConfig
from ..graph import SocialGraph
from .base import ProximityMeasure, register_proximity
from .pagerank import _normalise


class _NeighbourhoodProximity(ProximityMeasure):
    """Shared machinery: candidate set = friends ∪ friends-of-friends."""

    def __init__(self, graph: SocialGraph, config: Optional[ProximityConfig] = None) -> None:
        super().__init__(graph, config)

    def _friends(self, user: int) -> Set[int]:
        return set(int(v) for v in self.graph.neighbour_ids(user).tolist())

    def _candidates(self, seeker: int) -> Set[int]:
        friends = self._friends(seeker)
        candidates = set(friends)
        for friend in friends:
            candidates.update(self._friends(friend))
        candidates.discard(seeker)
        return candidates

    def _pair_score(self, seeker_friends: Set[int], target: int) -> float:
        raise NotImplementedError

    def vector(self, seeker: int) -> Dict[int, float]:
        """Score each friend / friend-of-friend and normalise to [0, 1]."""
        self.graph.validate_user(seeker)
        seeker_friends = self._friends(seeker)
        scores: Dict[int, float] = {}
        for target in self._candidates(seeker):
            score = self._pair_score(seeker_friends, target)
            if target in seeker_friends:
                # Direct friendship always dominates pure overlap.
                score += 1.0 + self.graph.edge_weight(seeker, target)
            if score > 0.0:
                scores[target] = score
        return _normalise(scores)


@register_proximity("common-neighbours")
class CommonNeighboursProximity(_NeighbourhoodProximity):
    """Number of shared friends."""

    def _pair_score(self, seeker_friends: Set[int], target: int) -> float:
        return float(len(seeker_friends & self._friends(target)))


@register_proximity("adamic-adar")
class AdamicAdarProximity(_NeighbourhoodProximity):
    """Shared friends weighted by ``1 / log(degree)`` of the shared friend."""

    def _pair_score(self, seeker_friends: Set[int], target: int) -> float:
        score = 0.0
        for shared in seeker_friends & self._friends(target):
            degree = self.graph.degree(shared)
            if degree > 1:
                score += 1.0 / math.log(degree + 1.0)
            else:
                score += 1.0
        return score


@register_proximity("jaccard")
class JaccardProximity(_NeighbourhoodProximity):
    """Jaccard overlap of the two friend sets."""

    def _pair_score(self, seeker_friends: Set[int], target: int) -> float:
        target_friends = self._friends(target)
        union = seeker_friends | target_friends
        if not union:
            return 0.0
        return len(seeker_friends & target_friends) / len(union)
