"""Engine-wide metrics registry with Prometheus text exposition.

One :class:`MetricsRegistry` names every number the stack can report —
counters, gauges and log-bucketed histograms — under a single namespace,
replacing the ad-hoc per-subsystem ``to_dict`` snapshots as the *serving*
surface (the snapshot methods remain; the registry reads them).

Two integration styles:

* **Push** for values born on the hot path with no existing home: call
  :meth:`Counter.inc` / :meth:`Histogram.observe` directly.
* **Pull** for accounting that already lives somewhere (the result cache's
  hit counters, the write path's epoch, the executor's pruning stats):
  register a **collector** — a callable run at exposition/snapshot time
  that copies the current values into gauges.  Pull keeps the hot path
  untouched and can never double-count.

:meth:`MetricsRegistry.expose_text` renders the Prometheus text format
(``text/plain; version=0.0.4``) served by ``GET /metrics``.
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left
from typing import Callable, Dict, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
]

_NAME_PATTERN = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")


def _valid_name(name: str) -> str:
    if not _NAME_PATTERN.match(name or ""):
        raise ValueError(
            f"invalid metric name {name!r}: must match "
            "[a-zA-Z_:][a-zA-Z0-9_:]*")
    return name


class Counter:
    """A monotonically increasing value (requests served, shards pruned)."""

    __slots__ = ("name", "help", "_value", "_lock")

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:  # noqa: A002
        self.name = _valid_name(name)
        self.help = help
        self._value = 0.0  # guarded-by: _lock
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative: counters only go up)."""
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def _render(self) -> List[str]:
        return [f"{self.name} {_format_value(self._value)}"]


class Gauge:
    """A value that can go anywhere (cache size, pending delta, hit rate)."""

    __slots__ = ("name", "help", "_value", "_lock")

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:  # noqa: A002
        self.name = _valid_name(name)
        self.help = help
        self._value = 0.0  # guarded-by: _lock
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def _render(self) -> List[str]:
        return [f"{self.name} {_format_value(self._value)}"]


def log_buckets(start: float = 1e-5, factor: float = 2.0,
                count: int = 22) -> Tuple[float, ...]:
    """Exponential bucket upper bounds: ``start * factor**i``.

    The default spans 10 µs to ~42 s at a factor of 2 — wide enough for
    both per-query latencies and offline build times at constant (22
    bucket) memory, with <= factor relative quantile error.
    """
    if start <= 0 or factor <= 1.0 or count < 1:
        raise ValueError("log_buckets needs start > 0, factor > 1, count >= 1")
    return tuple(start * factor ** i for i in range(count))


class Histogram:
    """A log-bucketed distribution (latencies, batch sizes).

    Buckets are cumulative-at-render (Prometheus semantics) but stored as
    per-bucket counts so :meth:`observe` is one bisect and one increment.
    """

    __slots__ = ("name", "help", "bounds", "_counts", "_sum", "_count",
                 "_lock")

    kind = "histogram"

    def __init__(self, name: str, help: str = "",  # noqa: A002
                 bounds: Optional[Tuple[float, ...]] = None) -> None:
        self.name = _valid_name(name)
        self.help = help
        self.bounds = tuple(bounds) if bounds is not None else log_buckets()
        if list(self.bounds) != sorted(self.bounds) or len(self.bounds) < 1:
            raise ValueError("histogram bounds must be ascending and non-empty")
        self._counts = [0] * (len(self.bounds) + 1)  # guarded-by: _lock (final slot = +Inf)
        self._sum = 0.0  # guarded-by: _lock
        self._count = 0  # guarded-by: _lock
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        position = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[position] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def percentile(self, fraction: float) -> float:
        """Bucket-resolution quantile estimate (upper bound of the bucket)."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        with self._lock:
            total = self._count
            counts = list(self._counts)
        if total == 0:
            return 0.0
        rank = max(1, math.ceil(fraction * total))
        running = 0
        for position, count in enumerate(counts):
            running += count
            if running >= rank:
                if position < len(self.bounds):
                    return self.bounds[position]
                return self.bounds[-1]  # +Inf bucket: clamp to the last bound
        return self.bounds[-1]

    def to_dict(self) -> Dict[str, float]:
        return {
            "count": self._count,
            "sum": self._sum,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
        }

    def _render(self) -> List[str]:
        with self._lock:
            counts = list(self._counts)
            total = self._count
            observed_sum = self._sum
        lines = []
        running = 0
        for bound, count in zip(self.bounds, counts):
            running += count
            lines.append(f'{self.name}_bucket{{le="{_format_value(bound)}"}} '
                         f"{running}")
        lines.append(f'{self.name}_bucket{{le="+Inf"}} {total}')
        lines.append(f"{self.name}_sum {_format_value(observed_sum)}")
        lines.append(f"{self.name}_count {total}")
        return lines


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class MetricsRegistry:
    """Named metrics under one namespace, plus pull-style collectors.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: the first
    call fixes the type and any repeated registration with a different
    type raises, so two subsystems can safely share a metric by name.
    """

    def __init__(self, namespace: str = "repro") -> None:
        self.namespace = _valid_name(namespace)
        self._metrics: "Dict[str, object]" = {}  # guarded-by: _lock
        self._collectors: List[Callable[["MetricsRegistry"], None]] = []  # guarded-by: _lock
        self._lock = threading.Lock()

    def _full_name(self, name: str) -> str:
        return _valid_name(f"{self.namespace}_{name}")

    def _get_or_create(self, name: str, factory, kind: str,
                       help: str):  # noqa: A002
        full = self._full_name(name)
        with self._lock:
            existing = self._metrics.get(full)
            if existing is not None:
                if existing.kind != kind:
                    raise ValueError(
                        f"metric {full!r} already registered as "
                        f"{existing.kind}, not {kind}")
                return existing
            metric = factory(full, help)
            self._metrics[full] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:  # noqa: A002
        """Get or create the counter ``<namespace>_<name>``."""
        return self._get_or_create(name, Counter, "counter", help)

    def gauge(self, name: str, help: str = "") -> Gauge:  # noqa: A002
        """Get or create the gauge ``<namespace>_<name>``."""
        return self._get_or_create(name, Gauge, "gauge", help)

    def histogram(self, name: str, help: str = "",  # noqa: A002
                  bounds: Optional[Tuple[float, ...]] = None) -> Histogram:
        """Get or create the histogram ``<namespace>_<name>``."""
        return self._get_or_create(
            name, lambda full, text: Histogram(full, text, bounds),
            "histogram", help)

    def register_collector(
            self, collector: Callable[["MetricsRegistry"], None]) -> None:
        """Run ``collector(self)`` before every snapshot/exposition.

        Collectors pull existing accounting (cache statistics, write-path
        epochs, pruning counters) into gauges so the owning hot paths stay
        un-instrumented.
        """
        with self._lock:
            self._collectors.append(collector)

    def unregister_collector(
            self, collector: Callable[["MetricsRegistry"], None]) -> None:
        with self._lock:
            if collector in self._collectors:
                self._collectors.remove(collector)

    def collect(self) -> None:
        """Run all collectors (collector errors propagate: fail loudly)."""
        with self._lock:
            collectors = list(self._collectors)
        for collector in collectors:
            collector(self)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    def get(self, name: str):
        """Look up a metric by short or full name, or ``None``."""
        with self._lock:
            return (self._metrics.get(name)
                    or self._metrics.get(f"{self.namespace}_{name}"))

    def snapshot(self) -> Dict[str, object]:
        """Flat ``{metric_name: value-or-dict}`` view after collection."""
        self.collect()
        with self._lock:
            metrics = dict(self._metrics)
        out: Dict[str, object] = {}
        for name in sorted(metrics):
            metric = metrics[name]
            if isinstance(metric, Histogram):
                out[name] = metric.to_dict()
            else:
                out[name] = metric.value
        return out

    def expose_text(self) -> str:
        """Prometheus text exposition (``text/plain; version=0.0.4``)."""
        self.collect()
        with self._lock:
            metrics = dict(self._metrics)
        lines: List[str] = []
        for name in sorted(metrics):
            metric = metrics[name]
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} {metric.kind}")
            lines.extend(metric._render())
        return "\n".join(lines) + "\n"


#: Process-wide default registry for library-level instrumentation; the
#: service creates its own per-instance registry so tests stay isolated.
_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _REGISTRY
