"""Fault-injection harness for the durable write path.

Durability claims ("an acknowledged update survives any crash") are only as
good as the crash schedule they were tested under, so the write path is
instrumented with **named injection points** — :func:`fault_point` calls at
every window where a kill or an I/O failure has a distinct observable
outcome.  Tests and the ``bench --suite durability`` chaos sweep *arm* a
point with an exception (or a callback) and drive the write path until it
fires; simulating the crash is then just discarding every in-memory object
and re-opening the durable directory, exactly what a restarted process
would do.

Design constraints, in order:

1. **Disarmed cost ~zero.**  The injection points are compiled into the
   production write path (that is the point — the tested code *is* the
   shipped code), so a disarmed :func:`fault_point` must be one module
   attribute read and a falsy check, the same discipline as
   :mod:`repro.obs.trace`'s disabled path.
2. **Kills are not exceptions.**  :class:`InjectedCrash` derives from
   :class:`BaseException`: nothing in the stack may accidentally swallow a
   simulated kill with a broad ``except Exception`` and carry on as if the
   process had survived.  I/O failures (a failing ``fsync``) are armed with
   ordinary ``OSError`` instead, because the write path is *supposed* to
   handle those.
3. **Deterministic schedules.**  A fault arms with ``after=N`` (skip the
   first N hits) and ``times=M`` (fire M times then disarm), so "kill at
   every record boundary" is a loop over ``after``.

Injection points on the write path (see the referencing modules):

========================== ====================================================
``wal.before_append``       before the record bytes reach the log file
``wal.after_append``        record written + synced, acknowledgement not yet
                            returned to the caller
``wal.fsync``               inside the fsync call (arm with ``OSError``)
``compact.stage``           delta fold staged, nothing committed yet
``compact.commit``          between the staged fold and the epoch advance
``publish.after_arena``     new arena generation on disk, manifest still old
``publish.before_manifest`` new WAL segment created, manifest swap pending
``arena.before_replace``    arena bytes in the ``.tmp`` file, final rename
                            pending
========================== ====================================================
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

__all__ = [
    "FaultRegistry",
    "InjectedCrash",
    "InjectedFault",
    "armed",
    "fault_point",
    "faults",
    "tear_final_record",
]


class InjectedCrash(BaseException):
    """A simulated process kill raised by an armed injection point.

    Deliberately **not** an :class:`Exception`: recovery code under test
    must never catch-and-continue past a kill, and broad ``except
    Exception`` handlers in the serving stack must not turn a simulated
    crash into a handled error.
    """

    def __init__(self, point: str) -> None:
        super().__init__(f"injected crash at fault point {point!r}")
        self.point = point


class InjectedFault(Exception):
    """A recoverable injected failure (the default non-crash payload)."""

    def __init__(self, point: str) -> None:
        super().__init__(f"injected fault at {point!r}")
        self.point = point


class _ArmedFault:
    """One armed injection point: what to raise/run and when."""

    __slots__ = ("point", "exc", "callback", "after", "times", "fired")

    def __init__(self, point: str, exc: Optional[BaseException],
                 callback: Optional[Callable[[str], None]],
                 after: int, times: int) -> None:
        self.point = point
        self.exc = exc
        self.callback = callback
        self.after = after
        self.times = times
        self.fired = 0


class FaultRegistry:
    """Registry of named injection points and the faults armed on them.

    The registry is process-global (:data:`faults`) so a test can arm a
    point without plumbing a handle through every layer, mirroring how a
    real chaos agent attaches to a running process.  All methods are
    thread-safe; :meth:`fire` itself raises *outside* the lock so an
    injected exception can never deadlock a re-entrant write path.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._armed: Dict[str, _ArmedFault] = {}  # guarded-by: _lock
        self._hits: Dict[str, int] = {}  # guarded-by: _lock
        #: Read lock-free by :func:`fault_point`: True only while at least
        #: one fault is armed, keeping the disarmed hot path to one check.
        self.active = False  # guarded-by: _lock

    # -- arming -------------------------------------------------------- #

    def arm(self, point: str, exc: Optional[BaseException] = None,
            callback: Optional[Callable[[str], None]] = None,
            after: int = 0, times: int = 1) -> None:
        """Arm ``point``: after ``after`` passes, fire ``times`` times.

        ``exc`` is raised at the call site (default: :class:`InjectedCrash`
        when no ``callback`` is given); ``callback`` runs instead of — or,
        when both are given, before — raising.  Negative ``after`` or
        non-positive ``times`` are rejected.
        """
        if after < 0:
            raise ValueError(f"after must be >= 0, got {after}")
        if times < 1:
            raise ValueError(f"times must be >= 1, got {times}")
        if exc is None and callback is None:
            exc = InjectedCrash(point)
        with self._lock:
            self._armed[point] = _ArmedFault(point, exc, callback, after, times)
            self.active = True

    def disarm(self, point: str) -> None:
        """Remove any fault armed on ``point`` (no-op when absent)."""
        with self._lock:
            self._armed.pop(point, None)
            self.active = bool(self._armed)

    def reset(self) -> None:
        """Disarm everything and zero the hit counters."""
        with self._lock:
            self._armed.clear()
            self._hits.clear()
            self.active = False

    # -- introspection -------------------------------------------------- #

    def hits(self, point: str) -> int:
        """How many times ``point`` was reached while any fault was armed."""
        with self._lock:
            return self._hits.get(point, 0)

    def armed_points(self) -> List[str]:
        """Names of the currently armed points (sorted)."""
        with self._lock:
            return sorted(self._armed)

    # -- the write path calls this -------------------------------------- #

    def fire(self, point: str) -> None:
        """Count a hit on ``point`` and fire its armed fault, if due."""
        to_raise: Optional[BaseException] = None
        callback: Optional[Callable[[str], None]] = None
        with self._lock:
            self._hits[point] = self._hits.get(point, 0) + 1
            fault = self._armed.get(point)
            if fault is None:
                return
            if fault.after > 0:
                fault.after -= 1
                return
            fault.fired += 1
            if fault.fired >= fault.times:
                self._armed.pop(point, None)
                self.active = bool(self._armed)
            callback = fault.callback
            to_raise = fault.exc
        if callback is not None:
            callback(point)
        if to_raise is not None:
            raise to_raise


#: Process-global registry; tests arm points here, the write path fires them.
faults = FaultRegistry()


def fault_point(name: str) -> None:
    """Hit the named injection point (near-free while nothing is armed)."""
    if faults.active:
        faults.fire(name)


class armed:
    """Context manager arming one point and guaranteeing cleanup.

    ::

        with armed("wal.after_append"):
            with pytest.raises(InjectedCrash):
                updater.add_actions([...])
    """

    def __init__(self, point: str, exc: Optional[BaseException] = None,
                 callback: Optional[Callable[[str], None]] = None,
                 after: int = 0, times: int = 1) -> None:
        self._point = point
        self._kwargs = dict(exc=exc, callback=callback, after=after,
                            times=times)

    def __enter__(self) -> "armed":
        faults.arm(self._point, **self._kwargs)  # type: ignore[arg-type]
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        faults.disarm(self._point)
        return False


def tear_final_record(path: Union[str, Path], keep_bytes: int = 3) -> int:
    """Corrupt a log file the way a mid-write power cut does.

    Truncates the file so that only ``keep_bytes`` bytes of its final
    record's on-disk footprint survive — a *torn* record: the length
    prefix may be intact while the payload is short, or the prefix itself
    is cut.  Returns the number of bytes removed.  The file must hold at
    least one complete record (use plain truncation for the empty case).
    """
    from ..storage.wal import torn_tail_offset  # local: avoid import cycle

    path = Path(path)
    size = path.stat().st_size
    last_start = torn_tail_offset(path)
    new_size = min(size, last_start + max(0, keep_bytes))
    if new_size >= size:
        raise ValueError(
            f"cannot tear {path}: keep_bytes={keep_bytes} keeps the final "
            "record intact")
    with path.open("rb+") as handle:
        handle.truncate(new_size)
    return size - new_size
