"""Engine-wide observability: query tracing and the metrics registry.

Two small, dependency-free modules every layer of the stack reports into:

* :mod:`repro.obs.trace` — hierarchical spans with thread-local context
  propagation, a bounded ring buffer of recent traces, JSONL and Chrome
  ``trace_event`` export, and a no-op disabled path cheap enough to leave
  the instrumentation compiled into the hot path (gated in CI at <= 2%
  overhead on the top-k suite).
* :mod:`repro.obs.metrics` — a named registry of counters, gauges and
  log-bucketed histograms with pull-style collectors (existing accounting
  objects are *read* at exposition time, never double-counted on the hot
  path) and a Prometheus text exposition backing ``GET /metrics``.

The package deliberately imports nothing from the rest of :mod:`repro`, so
any module — storage, proximity, core, service — can instrument itself
without creating an import cycle.
"""

from .metrics import Counter, Gauge, Histogram, MetricsRegistry, get_registry
from .trace import (
    NULL_SPAN,
    Span,
    Trace,
    Tracer,
    current_span,
    get_tracer,
    render_tree,
    set_tracer,
    span,
    stage_breakdown,
    use,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "NULL_SPAN",
    "Span",
    "Trace",
    "Tracer",
    "current_span",
    "get_tracer",
    "render_tree",
    "set_tracer",
    "span",
    "stage_breakdown",
    "use",
]
