"""Engine-wide observability: query tracing and the metrics registry.

Three small, dependency-free modules every layer of the stack reports into:

* :mod:`repro.obs.trace` — hierarchical spans with thread-local context
  propagation, a bounded ring buffer of recent traces, JSONL and Chrome
  ``trace_event`` export, and a no-op disabled path cheap enough to leave
  the instrumentation compiled into the hot path (gated in CI at <= 2%
  overhead on the top-k suite).
* :mod:`repro.obs.metrics` — a named registry of counters, gauges and
  log-bucketed histograms with pull-style collectors (existing accounting
  objects are *read* at exposition time, never double-counted on the hot
  path) and a Prometheus text exposition backing ``GET /metrics``.
* :mod:`repro.obs.faults` — named fault-injection points compiled into the
  durable write path, armed by crash-recovery tests and the
  ``bench --suite durability`` chaos sweep (near-free while disarmed, the
  same discipline as the disabled tracer).

The package deliberately imports nothing from the rest of :mod:`repro`, so
any module — storage, proximity, core, service — can instrument itself
without creating an import cycle.
"""

from .faults import (
    FaultRegistry,
    InjectedCrash,
    InjectedFault,
    armed,
    fault_point,
    faults,
    tear_final_record,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, get_registry
from .trace import (
    NULL_SPAN,
    Span,
    Trace,
    Tracer,
    current_span,
    get_tracer,
    render_tree,
    set_tracer,
    span,
    stage_breakdown,
    use,
)

__all__ = [
    "FaultRegistry",
    "InjectedCrash",
    "InjectedFault",
    "armed",
    "fault_point",
    "faults",
    "tear_final_record",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "NULL_SPAN",
    "Span",
    "Trace",
    "Tracer",
    "current_span",
    "get_tracer",
    "render_tree",
    "set_tracer",
    "span",
    "stage_breakdown",
    "use",
]
