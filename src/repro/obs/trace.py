"""Hierarchical query tracing with a near-free disabled path.

A **trace** is the tree of timed **spans** one query (or update, or
compaction) produced: monotonic start/end timestamps, free-form attributes,
and parent links.  The design goals, in order:

1. **The disabled path must cost almost nothing.**  Production serving
   leaves instrumentation call sites compiled into the hot path; with no
   tracer installed, :func:`span` is one module-global read, a ``None``
   check and the shared :data:`NULL_SPAN` context manager.  The truly hot
   loops (per-shard scans) additionally guard on :func:`get_tracer`
   returning ``None`` and skip even that.  CI gates the overhead at <= 2%
   of the top-k suite's p50.
2. **Context propagates implicitly within a thread.**  ``span()`` nests
   under the calling thread's active span through a ``threading.local``
   stack, so the storage layer does not need plumbing to end up under the
   service's request span.  Crossing a thread pool is explicit: capture
   :func:`current_span` before submitting and pass it as ``parent=``.
3. **Completed traces are queryable.**  Each finished *root* span files its
   trace into a bounded ring buffer keyed by trace id, which backs
   ``GET /trace/<id>`` and ``repro explain --analyze``.  The buffer holds
   the most recent ``capacity`` traces at constant memory.

Export formats: :meth:`Trace.to_jsonl` (one JSON object per span, greppable
and diffable) and :meth:`Trace.to_chrome` (the Chrome ``trace_event``
format — load the file at ``chrome://tracing`` or https://ui.perfetto.dev).
"""

from __future__ import annotations

import itertools
import json
import random
import threading
import time
from collections import OrderedDict
from typing import Callable, Dict, List, Optional

__all__ = [
    "NULL_SPAN",
    "Span",
    "Trace",
    "Tracer",
    "current_span",
    "get_tracer",
    "set_tracer",
    "span",
    "use",
    "render_tree",
    "stage_breakdown",
]


class _NullSpan:
    """The do-nothing span returned whenever tracing is off or unsampled.

    A single shared instance: entering/exiting it allocates nothing, and it
    is falsy so call sites can guard optional work with ``if span:``.
    """

    __slots__ = ()

    recording = False

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def __bool__(self) -> bool:
        return False

    def set(self, **attributes: object) -> "_NullSpan":
        return self

    def add(self, key: str, amount: float = 1) -> "_NullSpan":
        return self


#: Shared no-op span; the entire cost of a disabled call site.
NULL_SPAN = _NullSpan()


class _UnsampledRoot(_NullSpan):
    """The span of a root that lost the sampling coin flip.

    While it is open it suppresses the thread's nested ``span()`` calls
    (they would otherwise find no active context and start fragment
    traces of their own), keeping unsampled requests NULL all the way
    down at the cost of one thread-local increment.
    """

    __slots__ = ("_tracer",)

    def __init__(self, tracer: "Tracer") -> None:
        self._tracer = tracer

    def __enter__(self) -> "_UnsampledRoot":
        self._tracer._suppress(1)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._suppress(-1)
        return False


class Span:
    """One timed operation inside a trace (a context manager).

    Attributes are free-form ``str -> json-able`` pairs; :meth:`set`
    overwrites, :meth:`add` accumulates numeric values (handy for counters
    like ``items_pruned`` that grow across a loop).  Durations are
    monotonic (:func:`time.perf_counter`) seconds.
    """

    __slots__ = ("name", "span_id", "parent_id", "trace", "started", "ended",
                 "attributes", "thread")

    recording = True

    def __init__(self, name: str, span_id: int, parent_id: Optional[int],
                 trace: "Trace", started: float) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.trace = trace
        self.started = started
        self.ended: Optional[float] = None
        self.attributes: Dict[str, object] = {}
        self.thread = threading.get_ident()

    def __bool__(self) -> bool:
        return True

    @property
    def duration_seconds(self) -> float:
        """Span duration; 0.0 while the span is still open."""
        if self.ended is None:
            return 0.0
        return self.ended - self.started

    def set(self, **attributes: object) -> "Span":
        """Attach (or overwrite) attributes; returns self for chaining."""
        self.attributes.update(attributes)
        return self

    def add(self, key: str, amount: float = 1) -> "Span":
        """Accumulate a numeric attribute (missing keys start at 0)."""
        self.attributes[key] = self.attributes.get(key, 0) + amount
        return self

    # -- context manager ------------------------------------------------ #

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.attributes.setdefault("error", exc_type.__name__)
        self.trace.tracer._finish(self)
        return False

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable view of one span."""
        return {
            "trace_id": self.trace.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_s": self.started,
            "duration_ms": self.duration_seconds * 1000.0,
            "attributes": dict(self.attributes),
        }


class Trace:
    """The completed (or in-flight) span tree of one traced operation."""

    __slots__ = ("trace_id", "name", "tracer", "spans", "_ids")

    def __init__(self, trace_id: str, name: str, tracer: "Tracer") -> None:
        self.trace_id = trace_id
        self.name = name
        self.tracer = tracer
        self.spans: List[Span] = []
        self._ids = itertools.count(1)

    @property
    def root(self) -> Optional[Span]:
        """The trace's root span (the first one started)."""
        return self.spans[0] if self.spans else None

    @property
    def duration_seconds(self) -> float:
        """Duration of the root span."""
        root = self.root
        return root.duration_seconds if root is not None else 0.0

    def children_of(self, span_id: Optional[int]) -> List[Span]:
        """Direct children of ``span_id`` in start order."""
        return [entry for entry in self.spans if entry.parent_id == span_id]

    def find(self, name: str) -> Optional[Span]:
        """First span with the given name, or ``None``."""
        for entry in self.spans:
            if entry.name == name:
                return entry
        return None

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable view (the ``/trace/<id>`` payload)."""
        return {
            "trace_id": self.trace_id,
            "name": self.name,
            "duration_ms": self.duration_seconds * 1000.0,
            "spans": [entry.to_dict() for entry in self.spans],
        }

    def to_jsonl(self) -> str:
        """One JSON object per span, newline-delimited (greppable export)."""
        return "\n".join(json.dumps(entry.to_dict(), sort_keys=True)
                         for entry in self.spans) + "\n"

    def to_chrome(self) -> str:
        """Chrome ``trace_event`` JSON (load at ``chrome://tracing``).

        Timestamps are microseconds relative to the root span's start so
        the timeline starts at zero regardless of process uptime.
        """
        origin = self.root.started if self.root is not None else 0.0
        events = []
        for entry in self.spans:
            events.append({
                "name": entry.name,
                "ph": "X",  # complete event: begin + duration in one record
                "ts": (entry.started - origin) * 1e6,
                "dur": entry.duration_seconds * 1e6,
                "pid": 1,
                "tid": entry.thread,
                "args": {key: value for key, value in entry.attributes.items()},
            })
        return json.dumps({"traceEvents": events,
                           "displayTimeUnit": "ms",
                           "otherData": {"trace_id": self.trace_id,
                                         "name": self.name}},
                          sort_keys=True)


class Tracer:
    """Creates spans, propagates context per thread, retains recent traces.

    Parameters
    ----------
    sample_rate:
        Probability that a new *root* span starts a recorded trace; spans
        of unsampled roots are :data:`NULL_SPAN` all the way down, so an
        unsampled request pays only the root-level coin flip.
    capacity:
        Ring-buffer size: the number of most-recent completed traces kept
        for ``/trace/<id>`` lookups.
    clock:
        Monotonic time source (injectable for deterministic tests).
    seed:
        Seed of the sampling RNG (injectable for deterministic tests).
    """

    def __init__(self, sample_rate: float = 1.0, capacity: int = 256,
                 clock: Callable[[], float] = time.perf_counter,
                 seed: Optional[int] = None) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(
                f"sample_rate must be in [0, 1], got {sample_rate}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sample_rate = sample_rate
        self.capacity = capacity
        self._clock = clock
        self._random = random.Random(seed)
        self._local = threading.local()
        self._lock = threading.Lock()
        self._traces: "OrderedDict[str, Trace]" = OrderedDict()  # guarded-by: _lock
        self._ids = itertools.count(1)
        #: Root spans started / actually recorded (sampling visibility).
        self.roots_started = 0
        self.roots_sampled = 0

    # -- context -------------------------------------------------------- #

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def current(self) -> Optional[Span]:
        """The calling thread's innermost open span, or ``None``."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def _suppress(self, delta: int) -> None:
        self._local.suppressed = self._suppressed() + delta

    def _suppressed(self) -> int:
        return getattr(self._local, "suppressed", 0)

    # -- span creation -------------------------------------------------- #

    def trace(self, name: str, trace_id: Optional[str] = None,
              **attributes: object):
        """Start a new root span (a fresh trace), subject to sampling.

        ``trace_id`` lets callers bind an external identity — the HTTP
        layer passes the request id so ``/trace/<id>`` lookups work from
        the ``X-Request-Id`` response header.
        """
        self.roots_started += 1
        if self.sample_rate < 1.0 and self._random.random() >= self.sample_rate:
            return _UnsampledRoot(self)
        self.roots_sampled += 1
        if trace_id is None:
            trace_id = f"{next(self._ids):08x}"
        trace = Trace(trace_id, name, self)
        span = Span(name, next(trace._ids), None, trace, self._clock())
        span.attributes.update(attributes)
        trace.spans.append(span)
        self._stack().append(span)
        return span

    def span(self, name: str, parent: Optional[Span] = None,
             **attributes: object):
        """Start a span under ``parent`` (default: the thread's current span).

        With no parent and no active span, this starts a new sampled trace
        rooted here — so library code traces standalone (``engine.run``
        from a script) and nests automatically when a service request span
        is already open.  ``parent`` crosses thread pools: capture
        :meth:`current` before submitting work, pass it in the worker.
        """
        if parent is None:
            parent = self.current()
            if parent is None:
                if self._suppressed():
                    return NULL_SPAN
                return self.trace(name, **attributes)
        elif parent is NULL_SPAN or not parent.recording:
            return NULL_SPAN
        trace = parent.trace
        span = Span(name, next(trace._ids), parent.span_id, trace,
                    self._clock())
        span.attributes.update(attributes)
        with self._lock:
            trace.spans.append(span)
        self._stack().append(span)
        return span

    def _finish(self, span: Span) -> None:
        span.ended = self._clock()
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # exited out of order; drop it wherever it sits
            stack.remove(span)
        if span.parent_id is None:
            self._record(span.trace)

    def _record(self, trace: Trace) -> None:
        with self._lock:
            self._traces[trace.trace_id] = trace
            self._traces.move_to_end(trace.trace_id)
            while len(self._traces) > self.capacity:
                self._traces.popitem(last=False)

    # -- retrieval ------------------------------------------------------ #

    def get(self, trace_id: str) -> Optional[Trace]:
        """The completed trace with this id, if still in the ring buffer."""
        with self._lock:
            return self._traces.get(trace_id)

    def recent(self, limit: int = 20) -> List[Trace]:
        """The most recently completed traces, newest first."""
        with self._lock:
            traces = list(self._traces.values())
        return traces[::-1][:max(0, limit)]

    def suppress(self):
        """A no-op span that suppresses nested ``span()`` calls while open.

        The cross-thread counterpart of an unsampled root: a worker thread
        executing on behalf of an unsampled request opens this so library
        spans below it stay NULL instead of starting fragment traces.
        """
        return _UnsampledRoot(self)

    def retained(self) -> int:
        """Number of completed traces currently in the ring buffer."""
        with self._lock:
            return len(self._traces)

    def last(self) -> Optional[Trace]:
        """The most recently completed trace."""
        recent = self.recent(1)
        return recent[0] if recent else None

    def clear(self) -> None:
        """Drop all retained traces (the ring buffer only)."""
        with self._lock:
            self._traces.clear()


# --------------------------------------------------------------------- #
# Module-level tracer (the one instrumented call sites consult)
# --------------------------------------------------------------------- #

_TRACER: Optional[Tracer] = None


def get_tracer() -> Optional[Tracer]:
    """The installed tracer, or ``None`` when tracing is disabled."""
    return _TRACER


def set_tracer(tracer: Optional[Tracer]) -> Optional[Tracer]:
    """Install (or with ``None`` uninstall) the process-wide tracer."""
    global _TRACER
    previous = _TRACER
    _TRACER = tracer
    return previous


def span(name: str, **attributes: object):
    """Start a span on the installed tracer; :data:`NULL_SPAN` when disabled.

    This is the default instrumentation call: one global read and a
    ``None`` check on the disabled path.
    """
    tracer = _TRACER
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, **attributes)


def current_span() -> Optional[Span]:
    """The calling thread's active span on the installed tracer."""
    tracer = _TRACER
    if tracer is None:
        return None
    return tracer.current()


class use:
    """Context manager installing ``tracer`` for the ``with`` block.

    Restores whatever was installed before on exit, so tests and
    ``repro explain --analyze`` can trace without leaking global state.
    """

    __slots__ = ("_tracer", "_previous")

    def __init__(self, tracer: Optional[Tracer]) -> None:
        self._tracer = tracer
        self._previous: Optional[Tracer] = None

    def __enter__(self) -> Optional[Tracer]:
        self._previous = set_tracer(self._tracer)
        return self._tracer

    def __exit__(self, exc_type, exc, tb) -> bool:
        set_tracer(self._previous)
        return False


# --------------------------------------------------------------------- #
# Rendering and aggregation
# --------------------------------------------------------------------- #

def render_tree(trace: Trace, wall_seconds: Optional[float] = None) -> str:
    """EXPLAIN-ANALYZE-style rendering of one trace's span tree.

    Each line shows the span name, its duration, its share of the root
    span, and its attributes.  The footer reports **stage coverage**: the
    fraction of the measured wall time (``wall_seconds`` when given, the
    root span's duration otherwise) accounted for by the root's direct
    children — the acceptance bar is that instrumented stages tile the
    query, not sample it.
    """
    root = trace.root
    if root is None:
        return f"trace {trace.trace_id}: (no spans)"
    wall = wall_seconds if wall_seconds is not None else root.duration_seconds
    lines = [f"trace {trace.trace_id}  ({root.name}, "
             f"wall {wall * 1000.0:.3f} ms)"]

    def attr_text(span: Span) -> str:
        if not span.attributes:
            return ""
        parts = []
        for key in sorted(span.attributes):
            value = span.attributes[key]
            if isinstance(value, float):
                parts.append(f"{key}={value:.6g}")
            else:
                parts.append(f"{key}={value}")
        return "  [" + " ".join(parts) + "]"

    def walk(span: Span, depth: int) -> None:
        share = (span.duration_seconds / wall * 100.0) if wall > 0 else 0.0
        lines.append(f"  {'  ' * depth}{span.name:<{max(30 - 2 * depth, 8)}} "
                     f"{span.duration_seconds * 1000.0:>9.3f} ms "
                     f"{share:>5.1f}%{attr_text(span)}")
        for child in trace.children_of(span.span_id):
            walk(child, depth + 1)

    walk(root, 0)
    covered = sum(child.duration_seconds
                  for child in trace.children_of(root.span_id))
    coverage = (covered / wall * 100.0) if wall > 0 else 0.0
    lines.append(f"  stage coverage: {coverage:.1f}% of wall time")
    return "\n".join(lines)


def stage_breakdown(traces: List[Trace]) -> Dict[str, Dict[str, float]]:
    """Aggregate span durations by name across traces (the bench block).

    Returns ``{span_name: {count, total_ms, mean_ms}}`` so BENCH_*.json
    records *where* time goes, not just totals.
    """
    totals: Dict[str, List[float]] = {}
    for trace in traces:
        for span in trace.spans:
            totals.setdefault(span.name, []).append(span.duration_seconds)
    return {
        name: {
            "count": len(samples),
            "total_ms": sum(samples) * 1000.0,
            "mean_ms": sum(samples) / len(samples) * 1000.0,
        }
        for name, samples in sorted(totals.items())
    }
