"""Configuration objects shared across the library.

All configuration is expressed as frozen dataclasses with eager validation:
constructing an invalid configuration raises :class:`ConfigurationError`
immediately rather than failing deep inside an algorithm.  The dataclasses
are deliberately plain (no dynamic attributes) so they serialise cleanly to
dictionaries for experiment logs.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, Optional

from .errors import ConfigurationError


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigurationError(message)


@dataclass(frozen=True)
class ScoringConfig:
    """Parameters of the blended social/textual scoring function.

    Attributes
    ----------
    alpha:
        Weight of the textual component in ``[0, 1]``.  ``alpha = 1`` means a
        purely textual (non-social) ranking, ``alpha = 0`` a purely social one.
    include_seeker:
        Whether the seeker's own tagging actions contribute to the social
        component.  The paper-family convention is to exclude them (a user's
        own bookmarks are not "help from friends"), which is the default.
    proximity_floor:
        Proximity values below this threshold are treated as zero.  This
        bounds the social expansion of frontier-based algorithms.
    vectorized:
        Whether algorithms may use the numpy scoring kernels (batched
        posting-list reads, CSR endorser reductions, ``argpartition``
        top-k).  The kernels return exactly the same rankings as the scalar
        path; disabling them is the scalar fallback for debugging and for
        the benchmark suite's speedup baseline.
    """

    alpha: float = 0.5
    include_seeker: bool = False
    proximity_floor: float = 1e-4
    vectorized: bool = True

    def __post_init__(self) -> None:
        _require(0.0 <= self.alpha <= 1.0, f"alpha must be in [0, 1], got {self.alpha}")
        _require(
            0.0 <= self.proximity_floor < 1.0,
            f"proximity_floor must be in [0, 1), got {self.proximity_floor}",
        )

    def to_dict(self) -> Dict[str, object]:
        """Return a plain-dict view suitable for experiment logs."""
        return asdict(self)


@dataclass(frozen=True)
class ProximityConfig:
    """Parameters of social proximity measures.

    Attributes
    ----------
    measure:
        Registry name of the proximity measure (for example
        ``"shortest-path"``, ``"ppr"``, ``"katz"``, ``"adamic-adar"``).
    decay:
        Multiplicative decay applied per hop by path-based measures.
    damping:
        Damping factor (restart probability complement) for personalised
        PageRank.
    max_hops:
        Hard cap on the number of hops explored from the seeker.
    katz_beta:
        Attenuation factor of the truncated Katz measure.
    ppr_iterations:
        Number of power iterations for personalised PageRank.
    ppr_tolerance:
        Early-exit L1 tolerance for personalised PageRank.
    cache_size:
        Number of seeker proximity vectors kept in the LRU cache
        (0 disables caching).
    materialize:
        Wrap the measure in
        :class:`~repro.proximity.materialized.MaterializedProximity`: exact
        per-seeker proximity rows are served from per-cluster shards
        (precomputed offline) and refined lazily through the online measure
        for seekers the shards do not cover.  The LRU cache wrapper is
        skipped in this mode — shard lookups are already O(touch).
    materialize_eager:
        Build all shard rows at engine construction.  Off by default: the
        offline build belongs in ``repro build-arena`` or an explicit
        warm-up, not on the query path.
    cluster_rounds:
        Label-propagation rounds used to partition seekers into shards.
    landmarks:
        Size of the landmark-sketch serving tier
        (:class:`~repro.proximity.landmarks.LandmarkProximity`).  When
        positive, engines with a partitioned layout additionally build a
        landmark executor the planner can route ``effort="fast"`` / tight
        SLO queries to.  0 (the default) disables the tier; standalone
        sketches then default to 16 landmarks.
    """

    measure: str = "shortest-path"
    decay: float = 0.5
    damping: float = 0.85
    max_hops: int = 4
    katz_beta: float = 0.3
    ppr_iterations: int = 30
    ppr_tolerance: float = 1e-8
    cache_size: int = 128
    materialize: bool = False
    materialize_eager: bool = False
    cluster_rounds: int = 5
    landmarks: int = 0

    def __post_init__(self) -> None:
        _require(bool(self.measure), "measure name must be a non-empty string")
        _require(0.0 < self.decay <= 1.0, f"decay must be in (0, 1], got {self.decay}")
        _require(0.0 < self.damping < 1.0, f"damping must be in (0, 1), got {self.damping}")
        _require(self.max_hops >= 1, f"max_hops must be >= 1, got {self.max_hops}")
        _require(0.0 < self.katz_beta < 1.0, f"katz_beta must be in (0, 1), got {self.katz_beta}")
        _require(self.ppr_iterations >= 1, "ppr_iterations must be >= 1")
        _require(self.ppr_tolerance > 0.0, "ppr_tolerance must be positive")
        _require(self.cache_size >= 0, "cache_size must be non-negative")
        _require(self.cluster_rounds >= 1,
                 f"cluster_rounds must be >= 1, got {self.cluster_rounds}")
        _require(self.landmarks >= 0,
                 f"landmarks must be non-negative, got {self.landmarks}")
        _require(not (self.materialize_eager and not self.materialize),
                 "materialize_eager requires materialize")

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)


@dataclass(frozen=True)
class EngineConfig:
    """Top-level configuration of :class:`repro.core.engine.SocialSearchEngine`.

    Attributes
    ----------
    algorithm:
        Registry name of the default top-k algorithm.
    scoring:
        Blended scoring parameters.
    proximity:
        Proximity-measure parameters.
    early_termination:
        Whether bound-based algorithms are allowed to stop before exhausting
        their inputs.  Disabling this is only useful for ablation studies.
    batch_size:
        Number of sequential accesses performed per scheduling decision in
        interleaving algorithms.
    partitions:
        Number of item shards the corpus is partitioned into for
        scatter-gather execution (see :mod:`repro.core.partition_exec`).
        1 (the default) keeps the classic single-partition layout; the
        planner only fans exact vectorized scans out, so every other route
        is unaffected by this knob.
    partition_seed:
        Seed of the label-propagation pass that groups users into the
        communities the item shards follow; fixed so partition layouts are
        reproducible across processes and CI runs.
    """

    algorithm: str = "social-first"
    scoring: ScoringConfig = field(default_factory=ScoringConfig)
    proximity: ProximityConfig = field(default_factory=ProximityConfig)
    early_termination: bool = True
    batch_size: int = 16
    partitions: int = 1
    partition_seed: int = 29

    def __post_init__(self) -> None:
        _require(bool(self.algorithm), "algorithm name must be a non-empty string")
        _require(self.batch_size >= 1, f"batch_size must be >= 1, got {self.batch_size}")
        _require(self.partitions >= 1,
                 f"partitions must be >= 1, got {self.partitions}")

    def to_dict(self) -> Dict[str, object]:
        return {
            "algorithm": self.algorithm,
            "scoring": self.scoring.to_dict(),
            "proximity": self.proximity.to_dict(),
            "early_termination": self.early_termination,
            "batch_size": self.batch_size,
            "partitions": self.partitions,
            "partition_seed": self.partition_seed,
        }


@dataclass(frozen=True)
class ServiceConfig:
    """Configuration of :class:`repro.service.QueryService` and its HTTP front end.

    Attributes
    ----------
    workers:
        Number of threads in the query executor pool.
    cache_capacity:
        Maximum number of query results kept in the service's LRU cache
        (0 disables result caching entirely).
    cache_ttl_seconds:
        Time-to-live of a cached result; 0 means entries never expire on
        their own (they are still evicted by LRU pressure and update-driven
        invalidation).
    deduplicate:
        Whether identical in-flight requests ``(seeker, tags, k, algorithm)``
        coalesce onto one computation instead of each occupying a worker.
    invalidation_horizon:
        Hop radius around a user touched by a friendship update within which
        cached results and proximity vectors are considered stale.  0 means
        "use the proximity measure's ``max_hops``".
    compact_threshold:
        Once a watched updater's delta overlays (live updates accumulated on
        top of frozen arena arrays) hold at least this many actions, the
        service folds them into fresh arrays on a background worker.
        0 disables background compaction (deltas then grow until
        :meth:`~repro.storage.updates.DatasetUpdater.compact` is called
        explicitly).
    host / port:
        Bind address of the ``repro serve`` HTTP API.  Port 0 asks the OS
        for an ephemeral port.
    """

    workers: int = 4
    cache_capacity: int = 1024
    cache_ttl_seconds: float = 300.0
    deduplicate: bool = True
    invalidation_horizon: int = 0
    compact_threshold: int = 0
    host: str = "127.0.0.1"
    port: int = 8080

    def __post_init__(self) -> None:
        _require(self.workers >= 1, f"workers must be >= 1, got {self.workers}")
        _require(self.cache_capacity >= 0,
                 f"cache_capacity must be non-negative, got {self.cache_capacity}")
        _require(self.cache_ttl_seconds >= 0.0,
                 f"cache_ttl_seconds must be non-negative, got {self.cache_ttl_seconds}")
        _require(self.invalidation_horizon >= 0,
                 f"invalidation_horizon must be non-negative, got {self.invalidation_horizon}")
        _require(self.compact_threshold >= 0,
                 f"compact_threshold must be non-negative, got {self.compact_threshold}")
        _require(bool(self.host), "host must be a non-empty string")
        _require(0 <= self.port <= 65535, f"port must be in [0, 65535], got {self.port}")

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)


@dataclass(frozen=True)
class DurabilityConfig:
    """Configuration of the durable write path (WAL + arena generations).

    Attributes
    ----------
    directory:
        Root of the durable store: ``MANIFEST.json`` plus the
        ``gen-<n>.arena`` / ``wal-<n>.log`` generation files.  ``None``
        (the default) disables durability entirely — updates live only in
        the in-memory delta overlays, the pre-WAL behaviour.
    wal_fsync:
        Fsync policy of the write-ahead log: ``"always"`` syncs every
        append before it is acknowledged (the only policy under which an
        acknowledged update unconditionally survives power loss),
        ``"interval"`` syncs at most once per ``wal_fsync_interval_seconds``
        (bounded loss, amortised cost), ``"off"`` leaves durability to the
        OS page cache (survives process crashes only).
    wal_fsync_interval_seconds:
        Maximum staleness of the log under the ``interval`` policy.
    checkpoint_threshold:
        Once the pending delta reaches this many actions the service
        checkpoints — compacts, publishes a new arena generation and
        rotates the WAL — instead of merely folding in memory.  0 disables
        automatic checkpoints (``DurableStore.checkpoint`` can still be
        called explicitly).
    keep_generations:
        Number of superseded generations retained after a checkpoint
        before garbage collection removes them (the current generation is
        always kept; 0 keeps only the current one).
    """

    directory: Optional[str] = None
    wal_fsync: str = "always"
    wal_fsync_interval_seconds: float = 0.05
    checkpoint_threshold: int = 0
    keep_generations: int = 0

    _FSYNC_POLICIES = ("always", "interval", "off")

    def __post_init__(self) -> None:
        _require(
            self.wal_fsync in self._FSYNC_POLICIES,
            f"wal_fsync must be one of {self._FSYNC_POLICIES}, "
            f"got {self.wal_fsync!r}",
        )
        _require(self.wal_fsync_interval_seconds >= 0.0,
                 "wal_fsync_interval_seconds must be non-negative")
        _require(self.checkpoint_threshold >= 0,
                 "checkpoint_threshold must be non-negative")
        _require(self.keep_generations >= 0,
                 "keep_generations must be non-negative")

    @property
    def enabled(self) -> bool:
        """Whether a durable directory was configured."""
        return self.directory is not None

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)


@dataclass(frozen=True)
class DatasetConfig:
    """Parameters of a synthetic social-tagging dataset.

    The defaults produce a small corpus suitable for unit tests; the
    benchmark harness scales them up.

    Attributes
    ----------
    num_users / num_items / num_tags:
        Sizes of the three entity domains.
    num_actions:
        Total number of tagging actions ``(user, item, tag)`` to generate.
    graph_model:
        Social graph generator name (``"barabasi-albert"``, ``"erdos-renyi"``,
        ``"watts-strogatz"``, ``"forest-fire"``, ``"community"``).
    avg_degree:
        Target average degree of the social graph.
    tag_zipf_exponent / item_zipf_exponent:
        Skew of tag and item popularity.
    homophily:
        Probability that a tagging action copies an item/tag pair previously
        used by a direct friend instead of sampling globally.  This is the
        knob that makes "help from friends" informative.
    tag_locality:
        Probability that an independently sampled action draws its tag from
        the user's **community vocabulary** (a community-specific permutation
        of the tag popularity ranking) instead of the global one.  Real
        tagging sites show exactly this structure — interest groups coin and
        reuse their own vocabulary — and it is what gives corpus partitions
        their prunable per-shard bounds.  0 (the default) reproduces the
        previous generator bit for bit.
    tags_per_item:
        Mean number of distinct tags attached to an item by one action burst.
    seed:
        Seed of the deterministic pseudo-random generator.
    name:
        Human-readable dataset name used in result tables.
    """

    num_users: int = 200
    num_items: int = 500
    num_tags: int = 50
    num_actions: int = 5000
    graph_model: str = "barabasi-albert"
    avg_degree: float = 8.0
    tag_zipf_exponent: float = 1.1
    item_zipf_exponent: float = 1.05
    homophily: float = 0.5
    tag_locality: float = 0.0
    tags_per_item: float = 2.0
    seed: int = 7
    name: str = "synthetic"

    def __post_init__(self) -> None:
        _require(self.num_users >= 2, "num_users must be >= 2")
        _require(self.num_items >= 1, "num_items must be >= 1")
        _require(self.num_tags >= 1, "num_tags must be >= 1")
        _require(self.num_actions >= 1, "num_actions must be >= 1")
        _require(self.avg_degree > 0.0, "avg_degree must be positive")
        _require(self.tag_zipf_exponent > 0.0, "tag_zipf_exponent must be positive")
        _require(self.item_zipf_exponent > 0.0, "item_zipf_exponent must be positive")
        _require(0.0 <= self.homophily <= 1.0, "homophily must be in [0, 1]")
        _require(0.0 <= self.tag_locality <= 1.0, "tag_locality must be in [0, 1]")
        _require(self.tags_per_item >= 1.0, "tags_per_item must be >= 1")
        _require(bool(self.name), "dataset name must be non-empty")

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)


@dataclass(frozen=True)
class WorkloadConfig:
    """Parameters of a synthetic query workload.

    Attributes
    ----------
    num_queries:
        Number of (seeker, tags) query instances to generate.
    tags_per_query:
        Mean number of tags per query (at least one).
    k:
        Default result size requested by the workload.
    seeker_strategy:
        ``"active"`` draws seekers proportionally to their activity,
        ``"uniform"`` draws them uniformly.
    tag_strategy:
        ``"profile"`` draws query tags from the seeker's own tag profile
        (falling back to global popularity), ``"popular"`` from global tag
        popularity, ``"uniform"`` uniformly.
    seed:
        Seed of the deterministic pseudo-random generator.
    """

    num_queries: int = 100
    tags_per_query: float = 2.0
    k: int = 10
    seeker_strategy: str = "active"
    tag_strategy: str = "profile"
    seed: int = 11

    _SEEKER_STRATEGIES = ("active", "uniform")
    _TAG_STRATEGIES = ("profile", "popular", "uniform")

    def __post_init__(self) -> None:
        _require(self.num_queries >= 1, "num_queries must be >= 1")
        _require(self.tags_per_query >= 1.0, "tags_per_query must be >= 1")
        _require(self.k >= 1, "k must be >= 1")
        _require(
            self.seeker_strategy in self._SEEKER_STRATEGIES,
            f"seeker_strategy must be one of {self._SEEKER_STRATEGIES}",
        )
        _require(
            self.tag_strategy in self._TAG_STRATEGIES,
            f"tag_strategy must be one of {self._TAG_STRATEGIES}",
        )

    def to_dict(self) -> Dict[str, object]:
        data = asdict(self)
        return data


@dataclass(frozen=True)
class ExperimentConfig:
    """Configuration of one evaluation run (dataset + workload + engine).

    Attributes
    ----------
    name:
        Experiment identifier used in result tables (for example ``"fig3"``).
    dataset:
        Synthetic dataset parameters.
    workload:
        Query workload parameters.
    engine:
        Engine parameters.
    holdout_fraction:
        Fraction of each seeker's tagging actions withheld from the index and
        used as relevance ground truth for quality metrics.
    """

    name: str = "experiment"
    dataset: DatasetConfig = field(default_factory=DatasetConfig)
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    engine: EngineConfig = field(default_factory=EngineConfig)
    holdout_fraction: float = 0.0

    def __post_init__(self) -> None:
        _require(bool(self.name), "experiment name must be non-empty")
        _require(
            0.0 <= self.holdout_fraction < 1.0,
            "holdout_fraction must be in [0, 1)",
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "dataset": self.dataset.to_dict(),
            "workload": self.workload.to_dict(),
            "engine": self.engine.to_dict(),
            "holdout_fraction": self.holdout_fraction,
        }


def default_engine_config(alpha: float = 0.5, algorithm: str = "social-first",
                          measure: str = "shortest-path") -> EngineConfig:
    """Convenience constructor used by examples and benchmarks."""
    return EngineConfig(
        algorithm=algorithm,
        scoring=ScoringConfig(alpha=alpha),
        proximity=ProximityConfig(measure=measure),
    )
