"""Dataset snapshots on disk.

A snapshot is a directory of line-oriented JSON files plus a metadata
document, so it can be inspected with standard tools and diffed between
runs:

```
snapshot/
  meta.json        name, counts, format version
  graph.json       social graph (see repro.graph.io)
  users.jsonl      one user record per line
  items.jsonl      one item record per line
  actions.jsonl    one tagging action per line
  holdout.jsonl    optional withheld actions
```
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Union

from ..errors import PersistenceError
from ..graph.io import read_graph_json, write_graph_json
from .dataset import Dataset
from .items import Item, ItemStore
from .tagging import TaggingAction, TaggingStore
from .users import User, UserStore

PathLike = Union[str, Path]

FORMAT_VERSION = 1


def _write_jsonl(path: Path, records: Iterable[dict]) -> int:
    count = 0
    with path.open("w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True))
            handle.write("\n")
            count += 1
    return count


def _read_jsonl(path: Path) -> Iterator[dict]:
    try:
        with path.open("r", encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line)
                except json.JSONDecodeError as exc:
                    raise PersistenceError(f"{path}:{lineno}: malformed JSON line: {exc}") from exc
    except OSError as exc:
        raise PersistenceError(f"failed to read {path}: {exc}") from exc


def save_dataset(dataset: Dataset, directory: PathLike) -> Path:
    """Write a dataset snapshot; returns the snapshot directory path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    write_graph_json(dataset.graph, directory / "graph.json")
    _write_jsonl(directory / "users.jsonl", (user.to_dict() for user in dataset.users))
    _write_jsonl(directory / "items.jsonl", (item.to_dict() for item in dataset.items))
    _write_jsonl(directory / "actions.jsonl",
                 (action.to_dict() for action in dataset.tagging))
    if dataset.holdout is not None:
        _write_jsonl(directory / "holdout.jsonl",
                     (action.to_dict() for action in dataset.holdout))
    meta = {
        "format_version": FORMAT_VERSION,
        "name": dataset.name,
        "num_users": dataset.num_users,
        "num_items": dataset.num_items,
        "num_tags": dataset.num_tags,
        "num_actions": dataset.num_actions,
        "has_holdout": dataset.holdout is not None,
    }
    with (directory / "meta.json").open("w", encoding="utf-8") as handle:
        json.dump(meta, handle, indent=2, sort_keys=True)
    return directory


def load_dataset(directory: PathLike) -> Dataset:
    """Load a dataset snapshot written by :func:`save_dataset`."""
    directory = Path(directory)
    meta_path = directory / "meta.json"
    try:
        with meta_path.open("r", encoding="utf-8") as handle:
            meta = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise PersistenceError(f"failed to read snapshot metadata {meta_path}: {exc}") from exc
    version = meta.get("format_version")
    if version != FORMAT_VERSION:
        raise PersistenceError(
            f"unsupported snapshot format version {version!r} (expected {FORMAT_VERSION})"
        )
    graph = read_graph_json(directory / "graph.json")
    users = UserStore()
    users.add_many(User.from_dict(record) for record in _read_jsonl(directory / "users.jsonl"))
    items = ItemStore()
    items.add_many(Item.from_dict(record) for record in _read_jsonl(directory / "items.jsonl"))
    actions: List[TaggingAction] = [
        TaggingAction.from_dict(record) for record in _read_jsonl(directory / "actions.jsonl")
    ]
    holdout: Optional[TaggingStore] = None
    if meta.get("has_holdout"):
        holdout = TaggingStore()
        holdout.add_many(
            TaggingAction.from_dict(record)
            for record in _read_jsonl(directory / "holdout.jsonl")
        )
    return Dataset.build(
        graph, actions, name=str(meta.get("name", "dataset")),
        users=users, items=items, holdout=holdout,
    )
