"""Out-of-core arena construction: chunked generation + memmap fill passes.

:func:`repro.storage.arena.build_arena` serialises an already-built
:class:`~repro.storage.dataset.Dataset` — which means the whole corpus has
been materialised in Python dicts first (tagging store hash indexes,
per-user social profiles, posting-list dicts).  At the 2,500-user benchmark
scale that is irrelevant; at the 100k–1M-user scale the ROADMAP targets it
is the difference between a few hundred MB and many GB of peak RSS.

This module builds the **same arena file** without ever materialising the
corpus in Python objects:

1. the social graph is generated normally (its CSR arrays are a few MB even
   at 1M users) and the tagging stream is consumed chunk-at-a-time from
   :meth:`TaggingModel.generate_chunks` — bounded numpy record batches;
2. actions are **deduplicated** against a sorted array of packed
   ``(user, item, tag)`` keys (merged LSM-style as chunks arrive) and the
   surviving first-occurrence rows are spilled to flat column files in a
   scratch directory;
3. every index section (inverted, endorser, social, action log) is then
   produced by count-then-fill passes over the spilled columns: composite
   integer sort keys, one global ``argsort`` per section, and blocked
   gathers into ``np.memmap`` outputs — 8 bytes per row instead of a
   Python object per row;
4. :func:`~repro.storage.arena.write_arena` streams the memmap-backed
   arrays to the target file in bounded slices.

The result is **byte-identical** to ``build_arena(build_dataset(config))``
at every seed (property-gated in ``tests/property``): the generator chunks
are the same action stream, deduplication keeps the same first occurrences,
and each fill pass reproduces the exact ordering the in-memory index
builders produce (frequency-ordered posting lists, ascending endorser and
social segments).
"""

from __future__ import annotations

import shutil
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..config import DatasetConfig
from ..errors import StorageError
from ..graph import generate_graph
from ..workload.tagging_model import TaggingModel
from .arena import (
    ARENA_VERSION,
    LazyRecordList,
    PathLike,
    _release_mapped_pages,
    write_arena,
)

#: default number of actions per generated chunk.
DEFAULT_CHUNK_SIZE = 100_000
#: rows moved per blocked gather / fill slice.
_BLOCK_ROWS = 1 << 20
#: merge the pending dedup runs into the base array once this many accumulate.
_MAX_PENDING_RUNS = 16

_COLUMNS = ("user_ids", "item_ids", "tag_ranks", "timestamps")


def _contains_sorted(haystack: np.ndarray, needles: np.ndarray) -> np.ndarray:
    """Boolean membership of ``needles`` in the sorted array ``haystack``."""
    if haystack.shape[0] == 0:
        return np.zeros(needles.shape[0], dtype=bool)
    positions = np.searchsorted(haystack, needles)
    positions = np.minimum(positions, haystack.shape[0] - 1)
    return haystack[positions] == needles


class _TripleDeduper:
    """Sorted-base + pending-runs membership structure over packed triples.

    Each accepted chunk contributes one sorted run of fresh keys; runs are
    folded into the base array geometrically (every ``_MAX_PENDING_RUNS``
    chunks) so per-chunk cost stays near O(chunk · log N) instead of
    re-sorting the full key set on every chunk.
    """

    def __init__(self) -> None:
        self._base = np.zeros(0, dtype=np.int64)
        self._runs: List[np.ndarray] = []

    def fresh_mask(self, sorted_keys: np.ndarray) -> np.ndarray:
        """Which of the (sorted, unique) keys have never been seen."""
        fresh = ~_contains_sorted(self._base, sorted_keys)
        for run in self._runs:
            if fresh.any():
                fresh &= ~_contains_sorted(run, sorted_keys)
        return fresh

    def add_run(self, sorted_keys: np.ndarray) -> None:
        """Record freshly accepted keys (already sorted and unique)."""
        if sorted_keys.shape[0] == 0:
            return
        self._runs.append(sorted_keys)
        if len(self._runs) >= _MAX_PENDING_RUNS:
            self._base = np.sort(
                np.concatenate([self._base] + self._runs), kind="stable")
            self._runs = []


class _ColumnSpill:
    """Append-only flat int64 column files in the scratch directory."""

    def __init__(self, directory: Path, columns: Sequence[str]) -> None:
        self._directory = directory
        self._columns = tuple(columns)
        self._handles = {
            column: (directory / f"log.{column}.i64").open("wb")
            for column in self._columns
        }
        self.rows = 0

    def append(self, batch: Dict[str, np.ndarray]) -> None:
        rows = None
        for column in self._columns:
            values = np.ascontiguousarray(batch[column], dtype=np.int64)
            if rows is None:
                rows = values.shape[0]
            self._handles[column].write(values.tobytes())
        self.rows += int(rows or 0)

    def close(self) -> Dict[str, np.ndarray]:
        """Flush and reopen every column as a read-only memmap."""
        for handle in self._handles.values():
            handle.close()
        if self.rows == 0:
            return {column: np.zeros(0, dtype=np.int64)
                    for column in self._columns}
        return {
            column: np.memmap(self._directory / f"log.{column}.i64",
                              dtype=np.int64, mode="r", shape=(self.rows,))
            for column in self._columns
        }


def _scratch_memmap(directory: Path, name: str, rows: int,
                    dtype=np.int64) -> np.ndarray:
    """A writable scratch memmap (plain zero-length array when empty)."""
    if rows == 0:
        return np.zeros(0, dtype=dtype)
    return np.memmap(directory / f"{name}.mm", dtype=dtype, mode="w+",
                     shape=(rows,))


def _gather_into(out: np.ndarray, source: np.ndarray,
                 order: np.ndarray) -> np.ndarray:
    """``out[:] = source[order]`` in bounded blocks (the memmap fill pass)."""
    for start in range(0, order.shape[0], _BLOCK_ROWS):
        stop = start + _BLOCK_ROWS
        out[start:stop] = np.asarray(source[order[start:stop]])
    return out


def _group_sorted(keys_sorted: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """``(unique_keys, counts)`` of an already-sorted key array (one pass)."""
    if keys_sorted.shape[0] == 0:
        return (np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64))
    boundaries = np.flatnonzero(np.diff(keys_sorted)) + 1
    starts = np.concatenate([np.zeros(1, dtype=np.int64), boundaries])
    ends = np.concatenate([boundaries,
                           np.array([keys_sorted.shape[0]], dtype=np.int64)])
    return np.asarray(keys_sorted[starts]), ends - starts


def _offsets_from_counts(counts: np.ndarray, length: int) -> np.ndarray:
    offsets = np.zeros(length + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return offsets


def build_arena_streaming(config: DatasetConfig, path: PathLike,
                          chunk_size: int = DEFAULT_CHUNK_SIZE,
                          scratch_dir: Optional[PathLike] = None) -> Path:
    """Build the arena for ``config`` without materialising the corpus.

    Parameters
    ----------
    config:
        The dataset parameters; must describe a corpus without holdout
        (holdout splitting is a cold evaluation path that inherently
        materialises per-user action lists — build those in memory).
    path:
        Target arena file; written atomically like every arena.
    chunk_size:
        Maximum number of actions per generated batch; bounds the Python
        footprint of the generation phase.
    scratch_dir:
        Directory for spill files and fill-pass memmaps; defaults to
        ``<path>.build`` next to the target and is removed afterwards.

    Returns the arena path.  The file is byte-identical to
    ``build_arena(build_dataset(config))`` at the same seed.
    """
    if chunk_size < 1:
        raise StorageError(f"chunk_size must be >= 1, got {chunk_size}")
    num_users = config.num_users
    num_items = config.num_items
    num_tags = config.num_tags
    if num_users * num_items * num_tags >= 2 ** 63:
        raise StorageError(
            "corpus domain too large to pack (user, item, tag) into int64 "
            f"keys: {num_users} x {num_items} x {num_tags}")

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    scratch = Path(scratch_dir) if scratch_dir is not None \
        else path.with_name(path.name + ".build")
    scratch.mkdir(parents=True, exist_ok=True)
    try:
        return _build_into(config, path, chunk_size, scratch)
    finally:
        shutil.rmtree(scratch, ignore_errors=True)


def _build_into(config: DatasetConfig, path: Path, chunk_size: int,
                scratch: Path) -> Path:
    num_users = config.num_users
    num_items = config.num_items
    num_tags = config.num_tags

    graph = generate_graph(config.graph_model, num_users, config.avg_degree,
                           seed=config.seed)
    model = TaggingModel(graph, config)

    # ------------------------------------------------------------------ #
    # Phase 1: stream, deduplicate, spill the surviving action log.
    # ------------------------------------------------------------------ #
    deduper = _TripleDeduper()
    spill = _ColumnSpill(scratch, _COLUMNS)
    for batch in model.generate_chunks(chunk_size):
        keys = (batch["user_ids"] * num_items + batch["item_ids"]) * num_tags \
            + batch["tag_ranks"]
        unique_keys, first_positions = np.unique(keys, return_index=True)
        fresh = deduper.fresh_mask(unique_keys)
        deduper.add_run(unique_keys[fresh])
        # Keep accepted rows in chunk order = first-occurrence order, the
        # insertion order TaggingStore.add preserves.
        accepted = np.sort(first_positions[fresh], kind="stable")
        spill.append({column: batch[column][accepted] for column in _COLUMNS})
    log = spill.close()
    total = spill.rows
    if total == 0:
        raise StorageError("streaming build produced no actions")

    users_log = log["user_ids"]
    items_log = log["item_ids"]
    ranks_log = log["tag_ranks"]

    # ------------------------------------------------------------------ #
    # Phase 2: tag table + arena-local tag ids.
    # ------------------------------------------------------------------ #
    # Tag names are zero-padded, so sorted names == sorted vocabulary ranks:
    # the arena tag table is the sorted distinct ranks mapped to names.
    present_ranks = np.unique(np.asarray(ranks_log))
    vocabulary = model.tags
    tags = [vocabulary[rank] for rank in present_ranks.tolist()]
    tag_ids_log = _scratch_memmap(scratch, "tag_ids", total)
    for start in range(0, total, _BLOCK_ROWS):
        stop = start + _BLOCK_ROWS
        tag_ids_log[start:stop] = np.searchsorted(
            present_ranks, np.asarray(ranks_log[start:stop]))

    arrays: Dict[str, np.ndarray] = {}
    offsets, neighbours, weights = graph.csr_arrays()
    arrays["graph.offsets"] = offsets
    arrays["graph.neighbours"] = neighbours
    arrays["graph.weights"] = weights

    # ------------------------------------------------------------------ #
    # Phase 3: endorser + inverted sections from one (tag, item, user) sort.
    # ------------------------------------------------------------------ #
    key_tiu = (np.asarray(tag_ids_log) * num_items + np.asarray(items_log)) \
        * num_users + np.asarray(users_log)
    # Keys are distinct triples, so stability cannot change the result —
    # but kind="stable" pins the permutation across numpy versions.
    order = np.argsort(key_tiu, kind="stable")
    taggers = _scratch_memmap(scratch, "endorser.taggers", total)
    _gather_into(taggers, users_log, order)
    # Not read again until the final write; keep its pages off the RSS bill.
    _release_mapped_pages(taggers)
    # Group the sorted rows by (tag, item): counts are the per-item
    # distinct-endorser frequencies (rows are distinct triples).
    pair_keys, pair_counts = _group_sorted(key_tiu[order] // num_users)
    del key_tiu, order
    pair_tags = pair_keys // num_items
    pair_items = pair_keys % num_items
    per_tag_items = np.bincount(pair_tags, minlength=len(tags))

    # Inverted index first (matching build_arena's manifest order): the
    # (tag, item, frequency) relation re-ordered per tag by
    # (-frequency, item id) — the posting-list layout.
    posting_order = np.lexsort((pair_items, -pair_counts, pair_tags))
    arrays["inverted.offsets"] = _offsets_from_counts(per_tag_items, len(tags))
    arrays["inverted.item_ids"] = pair_items[posting_order]
    arrays["inverted.frequencies"] = pair_counts[posting_order]
    del posting_order

    arrays["endorser.item_offsets"] = _offsets_from_counts(
        per_tag_items, len(tags))
    arrays["endorser.item_ids"] = pair_items
    arrays["endorser.frequencies"] = pair_counts
    arrays["endorser.segment_offsets"] = _offsets_from_counts(
        pair_counts, pair_counts.shape[0])
    arrays["endorser.taggers"] = taggers

    # ------------------------------------------------------------------ #
    # Phase 4: social section from one (tag, user, item) sort.
    # ------------------------------------------------------------------ #
    key_tui = (np.asarray(tag_ids_log) * num_users + np.asarray(users_log)) \
        * num_items + np.asarray(items_log)
    order = np.argsort(key_tui, kind="stable")
    social_items = _scratch_memmap(scratch, "social.item_ids", total)
    _gather_into(social_items, items_log, order)
    _release_mapped_pages(social_items)
    row_keys, row_counts = _group_sorted(key_tui[order] // num_items)
    del key_tui, order
    arrays["social.user_offsets"] = _offsets_from_counts(
        np.bincount(row_keys // num_users, minlength=len(tags)), len(tags))
    arrays["social.user_ids"] = row_keys % num_users
    arrays["social.segment_offsets"] = _offsets_from_counts(
        row_counts, row_counts.shape[0])
    arrays["social.item_ids"] = social_items

    # ------------------------------------------------------------------ #
    # Phase 5: the deduplicated action log + meta, then the atomic write.
    # ------------------------------------------------------------------ #
    arrays["actions.user_ids"] = users_log
    arrays["actions.item_ids"] = items_log
    arrays["actions.tag_ids"] = tag_ids_log
    arrays["actions.timestamps"] = log["timestamps"]

    # Every fill pass is done: evict the phases' resident pages so the
    # header-encoding and write phase start from a near-empty RSS (the
    # writer re-faults each array in bounded slices and drops it again).
    for array in arrays.values():
        _release_mapped_pages(array)
    for column in log.values():
        _release_mapped_pages(column)

    # The user and item records are lazy: at 100k users / 300k items the
    # eager dicts alone would dwarf every array buffer in this build.
    # write_arena serialises them record-at-a-time into the same bytes.
    item_prefix = f"{config.name}-item-"
    meta: Dict[str, object] = {
        "format": "repro-arena",
        "format_version": ARENA_VERSION,
        "name": config.name,
        "num_users": num_users,
        "num_actions": total,
        "tags": tags,
        "holdout_tags": None,
        "users": LazyRecordList(
            num_users,
            lambda user_id: {"user_id": user_id, "name": f"user-{user_id}",
                             "attributes": {}}),
        "items": LazyRecordList(
            num_items,
            lambda item_id: {"item_id": item_id,
                             "title": f"{item_prefix}{item_id}",
                             "url": None, "attributes": {}}),
        "has_holdout": False,
        "materialized": None,
        "landmark": None,
    }
    return write_arena(path, meta, arrays)


__all__ = ["DEFAULT_CHUNK_SIZE", "build_arena_streaming"]
