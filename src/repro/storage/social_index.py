"""Per-user tagging profiles ("social index").

Frontier-based algorithms walk the seeker's network friend by friend and,
for each visited friend, need the friend's items for every query tag in one
cheap lookup.  The social index materialises exactly that access path:

``profile(user) : tag → tuple(item ids the user endorsed with the tag)``

It is the social counterpart of the inverted index — same data, pivoted the
other way.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Sequence, Tuple

from .tagging import TaggingStore


class SocialIndex:
    """User → tag → items index over the tagging relation."""

    def __init__(self) -> None:
        self._profiles: Dict[int, Dict[str, Tuple[int, ...]]] = {}

    @classmethod
    def build(cls, tagging: TaggingStore) -> "SocialIndex":
        """Build the per-user profiles from a tagging store."""
        index = cls()
        staging: Dict[int, Dict[str, List[int]]] = {}
        for action in tagging:
            user_profile = staging.setdefault(action.user_id, {})
            user_profile.setdefault(action.tag, []).append(action.item_id)
        for user_id, tags in staging.items():
            index._profiles[user_id] = {
                tag: tuple(sorted(set(items))) for tag, items in tags.items()
            }
        return index

    def apply_delta(self, added: Mapping[Tuple[int, str], Sequence[int]]
                    ) -> None:
        """Merge new ``(user, tag) -> [items]`` pairs into the profiles.

        Only the touched ``(user, tag)`` entries are rebuilt; the merged
        tuples are identical to what :meth:`build` would produce from the
        merged tagging store.
        """
        for (user_id, tag), items in added.items():
            profile = self._profiles.setdefault(user_id, {})
            current = profile.get(tag, ())
            profile[tag] = tuple(sorted(set(current) | set(items)))

    def __contains__(self, user_id: int) -> bool:
        return user_id in self._profiles

    def __len__(self) -> int:
        return len(self._profiles)

    def users(self) -> List[int]:
        """All users that have a non-empty profile."""
        return sorted(self._profiles)

    def profile(self, user_id: int) -> Dict[str, Tuple[int, ...]]:
        """The user's full profile (empty dict for inactive users)."""
        return dict(self._profiles.get(user_id, {}))

    def items_for(self, user_id: int, tag: str) -> Tuple[int, ...]:
        """Items ``user_id`` endorsed with ``tag`` (empty tuple when none)."""
        return self._profiles.get(user_id, {}).get(tag, ())

    def tags_for(self, user_id: int) -> Tuple[str, ...]:
        """Tags the user has employed, sorted."""
        return tuple(sorted(self._profiles.get(user_id, {})))

    def num_entries(self) -> int:
        """Total number of (user, tag, item) entries."""
        return sum(
            len(items)
            for profile in self._profiles.values()
            for items in profile.values()
        )

    def iter_entries(self) -> Iterator[Tuple[int, str, int]]:
        """Yield every ``(user, tag, item)`` entry."""
        for user_id in self.users():
            for tag, items in sorted(self._profiles[user_id].items()):
                for item_id in items:
                    yield user_id, tag, item_id

    def memory_bytes(self) -> int:
        """Approximate memory footprint in bytes."""
        return self.num_entries() * 16 + len(self._profiles) * 64
