"""Durable store: atomic arena generations + WAL-based crash recovery.

This module ties the two durability primitives together into the on-disk
layout a durable deployment actually runs on:

* :mod:`repro.storage.arena` provides the frozen, memory-mapped snapshot
  format (now written atomically via ``.tmp`` + ``os.replace``);
* :mod:`repro.storage.wal` provides the append-only log of every update
  acknowledged since that snapshot.

A durable directory holds **generations**::

    MANIFEST.json        <- names the current generation (atomic swap point)
    gen-<n>.arena        <- arena snapshot of generation n
    wal-<n>.log          <- updates acknowledged after gen-<n> was built

The manifest is the single source of truth.  It is replaced atomically
(tmp + fsync + ``os.replace``), so every crash window resolves cleanly:

* *before* the manifest swap, the old manifest still names the old arena
  and the old WAL — which together hold every acknowledged update; any
  half-published ``gen-<n+1>`` / ``wal-<n+1>`` files are unreferenced
  strays that recovery garbage-collects;
* *after* the swap, the new generation's arena already contains every
  update the old WAL held (the checkpoint runs under the updater's mutate
  lock, so nothing can be acknowledged into the old segment once the new
  arena is built), and the old files are strays.

A half-written generation is therefore **never visible**: readers open
whatever complete arena the manifest names, and in-process queries are
untouched by a checkpoint entirely — they keep reading the live dataset,
whose delta-fold swap is value-identical by construction.

Crash recovery (:meth:`DurableStore.open`) is *replay to epoch*: open the
manifest's arena, then re-apply the WAL records through the exact same
incremental :class:`~repro.storage.updates.DatasetUpdater` path that
acknowledged them originally, tolerating (and truncating) a torn final
record.  Replay runs with the WAL detached — the records are already
durable — and the log is only re-attached for new appends afterwards.
"""

from __future__ import annotations

import json
import os
import re
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..config import DurabilityConfig
from ..errors import PersistenceError
from ..obs.faults import fault_point
from ..obs.metrics import get_registry
from ..obs.trace import span as obs_span
from .arena import build_arena, load_dataset_from_arena
from .dataset import Dataset
from .updates import DatasetUpdater
from .wal import WAL_MAGIC, WriteAheadLog, scan_wal, truncate_torn_tail

PathLike = Union[str, Path]

MANIFEST_NAME = "MANIFEST.json"
MANIFEST_FORMAT = "repro-durable"
MANIFEST_VERSION = 1

_GENERATION_FILE = re.compile(r"^(gen|wal)-(\d+)\.(arena|log)(\.tmp)?$")


def _fsync_directory(directory: Path) -> None:
    try:
        fd = os.open(str(directory), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def read_manifest(directory: PathLike) -> Dict[str, object]:
    """Parse and validate ``MANIFEST.json``; raises when absent/invalid."""
    path = Path(directory) / MANIFEST_NAME
    try:
        manifest = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise PersistenceError(
            f"{path} not found: not an initialised durable store "
            "(use DurableStore.initialise)") from None
    except (OSError, ValueError) as exc:
        raise PersistenceError(f"failed to read manifest {path}: {exc}") from exc
    if manifest.get("format") != MANIFEST_FORMAT:
        raise PersistenceError(f"{path}: not a durable-store manifest")
    for key in ("generation", "arena", "wal", "epoch"):
        if key not in manifest:
            raise PersistenceError(f"{path}: manifest is missing {key!r}")
    return manifest


def write_manifest(directory: PathLike, manifest: Dict[str, object]) -> Path:
    """Atomically publish a manifest (tmp + fsync + ``os.replace``)."""
    directory = Path(directory)
    path = directory / MANIFEST_NAME
    tmp = directory / (MANIFEST_NAME + ".tmp")
    encoded = json.dumps(manifest, indent=2, sort_keys=True)
    with tmp.open("w", encoding="utf-8") as handle:
        handle.write(encoded)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    _fsync_directory(directory)
    return path


@dataclass
class RecoveryReport:
    """What one :meth:`DurableStore.open` replay actually did."""

    generation: int = 0
    epoch: int = 0
    records_replayed: int = 0
    actions_replayed: int = 0
    edges_replayed: int = 0
    users_replayed: int = 0
    items_replayed: int = 0
    epoch_markers: int = 0
    torn_tail_bytes: int = 0
    strays_removed: List[str] = field(default_factory=list)
    duration_seconds: float = 0.0

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict view for ``repro recover`` output and stats()."""
        return {
            "generation": self.generation,
            "epoch": self.epoch,
            "records_replayed": self.records_replayed,
            "actions_replayed": self.actions_replayed,
            "edges_replayed": self.edges_replayed,
            "users_replayed": self.users_replayed,
            "items_replayed": self.items_replayed,
            "epoch_markers": self.epoch_markers,
            "torn_tail_bytes": self.torn_tail_bytes,
            "strays_removed": list(self.strays_removed),
            "duration_seconds": self.duration_seconds,
        }


class DurableStore:
    """A dataset whose acknowledged updates survive crashes.

    Construct via :meth:`initialise` (bootstrap a directory from a built
    dataset) or :meth:`open` (recover after a restart or crash); both
    return a store whose :attr:`updater` has the WAL attached, so every
    update flowing through it is logged before it is acknowledged.
    """

    def __init__(self, directory: Path, config: DurabilityConfig,
                 manifest: Dict[str, object], dataset: Dataset,
                 updater: DatasetUpdater, wal: WriteAheadLog,
                 recovery: RecoveryReport) -> None:
        self.directory = directory
        self.config = config
        self.manifest = manifest
        self.dataset = dataset
        self.updater = updater
        self.recovery = recovery
        self._wal = wal
        self._closed = False
        self.checkpoints = 0
        self.generations_gcd = 0
        registry = get_registry()
        self._published_metric = registry.counter(
            "durable_generations_published_total",
            "Arena generations atomically published.")
        self._gc_metric = registry.counter(
            "durable_generations_gc_total",
            "Superseded generation files garbage-collected.")
        self._checkpoint_histogram = registry.histogram(
            "durable_checkpoint_seconds",
            "End-to-end latency of durable checkpoints.")

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def initialise(cls, dataset: Dataset, directory: PathLike,
                   config: Optional[DurabilityConfig] = None,
                   proximity=None) -> "DurableStore":
        """Bootstrap a durable directory from a built dataset.

        Writes ``gen-0.arena``, an empty ``wal-0.log`` and the manifest,
        then opens the store normally (so the returned dataset is the
        memory-mapped arena view, identical to what a recovery would
        serve).  Refuses to overwrite an existing store.
        """
        directory = Path(directory)
        if (directory / MANIFEST_NAME).exists():
            raise PersistenceError(
                f"{directory} already holds a durable store; "
                "open it instead of initialising")
        directory.mkdir(parents=True, exist_ok=True)
        config = config or DurabilityConfig(directory=str(directory))
        build_arena(dataset, directory / "gen-0.arena", proximity)
        WriteAheadLog(directory / "wal-0.log", fsync="always").close()
        write_manifest(directory, {
            "format": MANIFEST_FORMAT,
            "version": MANIFEST_VERSION,
            "generation": 0,
            "arena": "gen-0.arena",
            "wal": "wal-0.log",
            "epoch": 0,
        })
        return cls.open(directory, config=config)

    @classmethod
    def open(cls, directory: PathLike,
             config: Optional[DurabilityConfig] = None) -> "DurableStore":
        """Open (and if needed crash-recover) a durable directory.

        This *is* the recovery path — a clean shutdown is just the case
        where the WAL replay has nothing torn.  The manifest's arena is
        memory-mapped, its WAL segment replayed record by record through
        the incremental update path (WAL detached, so nothing is
        re-appended), a torn final record is truncated, and unreferenced
        generation files from interrupted checkpoints are removed.
        """
        directory = Path(directory)
        config = config or DurabilityConfig(directory=str(directory))
        manifest = read_manifest(directory)
        report = RecoveryReport(generation=int(manifest["generation"]))
        started = time.perf_counter()
        registry = get_registry()
        with obs_span("durable.recover", directory=str(directory),
                      generation=report.generation) as recover_span:
            arena_path = directory / str(manifest["arena"])
            wal_path = directory / str(manifest["wal"])
            dataset = load_dataset_from_arena(arena_path)
            updater = DatasetUpdater(dataset)
            scan = scan_wal(wal_path)
            if scan.torn:
                report.torn_tail_bytes = truncate_torn_tail(wal_path)
            for record in scan.records:
                if record.kind == "actions":
                    actions = record.actions()
                    updater.add_actions(actions)
                    report.actions_replayed += len(actions)
                elif record.kind == "friendships":
                    edges = record.friendships()
                    updater.add_friendships(edges)
                    report.edges_replayed += len(edges)
                elif record.kind == "users":
                    count = int(record.payload.get("count", 0))
                    updater.add_users(count)
                    report.users_replayed += count
                elif record.kind == "items":
                    items = record.items()
                    updater.add_items(items)
                    report.items_replayed += len(items)
                elif record.kind == "epoch":
                    report.epoch_markers += 1
                report.records_replayed += 1
            # Epoch continuity: the manifest records the updater epoch at
            # publish; every marker replayed is one compaction since.
            report.epoch = int(manifest["epoch"]) + report.epoch_markers
            updater.restore_epoch(report.epoch)
            wal = WriteAheadLog(
                wal_path, fsync=config.wal_fsync,
                fsync_interval_seconds=config.wal_fsync_interval_seconds)
            updater.attach_wal(wal)
            report.duration_seconds = time.perf_counter() - started
            recover_span.set(records=report.records_replayed,
                             torn_bytes=report.torn_tail_bytes)
        registry.histogram(
            "durable_replay_seconds",
            "WAL replay duration during recovery.").observe(
                report.duration_seconds)
        registry.counter(
            "durable_records_replayed_total",
            "WAL records replayed during recovery.").inc(
                report.records_replayed)
        store = cls(directory, config, manifest, dataset, updater, wal,
                    report)
        report.strays_removed = store.gc()
        return store

    # ------------------------------------------------------------------ #
    # Checkpointing: publish a new generation atomically
    # ------------------------------------------------------------------ #

    def checkpoint(self, proximity=None, force: bool = False
                   ) -> Dict[str, object]:
        """Compact, publish a fresh arena generation and rotate the WAL.

        Runs under the updater's mutate lock end to end: writers block for
        the duration (readers do not — in-process queries keep using the
        live dataset, and the fold they race is value-identical), and no
        update can be acknowledged into the *old* WAL segment after the
        new arena was built, which is what makes the manifest swap safe.

        Returns a summary dict; ``published`` is ``False`` when there was
        nothing to checkpoint (no pending delta and an empty WAL segment)
        and ``force`` was not set.
        """
        if self._closed:
            raise PersistenceError("checkpoint on a closed durable store")
        started = time.perf_counter()
        with self.updater.mutate_lock, obs_span(
                "durable.publish",
                generation=int(self.manifest["generation"])) as publish_span:
            pending = self.updater.pending_delta()
            segment_dirty = self._wal.path.stat().st_size > len(WAL_MAGIC)
            if not force and not pending and not segment_dirty:
                return {"published": False,
                        "generation": int(self.manifest["generation"]),
                        "folded": 0}
            folded = self.updater.compact()
            generation = int(self.manifest["generation"]) + 1
            arena_name = f"gen-{generation}.arena"
            wal_name = f"wal-{generation}.log"
            build_arena(self.dataset, self.directory / arena_name, proximity)
            fault_point("publish.after_arena")
            new_wal = WriteAheadLog(
                self.directory / wal_name, fsync=self.config.wal_fsync,
                fsync_interval_seconds=self.config.wal_fsync_interval_seconds)
            try:
                fault_point("publish.before_manifest")
                manifest = {
                    "format": MANIFEST_FORMAT,
                    "version": MANIFEST_VERSION,
                    "generation": generation,
                    "arena": arena_name,
                    "wal": wal_name,
                    "epoch": self.updater.epoch,
                }
                write_manifest(self.directory, manifest)
            except BaseException:
                # Crash or failure before the swap: the old manifest still
                # names the old arena + full old WAL, so nothing acked is
                # lost; drop the unpublished segment handle and leave its
                # file as a stray for gc().
                new_wal.close()
                raise
            # The swap is published; everything below is post-commit.
            old_wal = self._wal
            self._wal = new_wal
            self.updater.attach_wal(new_wal)
            self.manifest = manifest
            old_wal.close()
            self.checkpoints += 1
            self._published_metric.inc()
            publish_span.set(new_generation=generation, folded=folded)
        removed = self.gc()
        duration = time.perf_counter() - started
        self._checkpoint_histogram.observe(duration)
        return {"published": True, "generation": generation,
                "folded": folded, "gc_removed": removed,
                "duration_seconds": duration}

    def gc(self) -> List[str]:
        """Remove generation files the manifest no longer references.

        Keeps the current generation plus ``config.keep_generations``
        predecessors; deletes older arenas, consumed WAL segments, strays
        from interrupted checkpoints (files *newer* than the manifest) and
        leftover ``.tmp`` files.  Returns the removed file names.
        """
        current = int(self.manifest["generation"])
        keep_from = current - self.config.keep_generations
        removed: List[str] = []
        for entry in sorted(self.directory.iterdir()):
            match = _GENERATION_FILE.match(entry.name)
            if match is None:
                continue
            if match.group(4):  # a .tmp stray from an interrupted write
                pass
            else:
                number = int(match.group(2))
                if keep_from <= number <= current:
                    continue
            try:
                entry.unlink()
                removed.append(entry.name)
            except OSError:
                continue
        if removed:
            self.generations_gcd += len(removed)
            self._gc_metric.inc(len(removed))
            _fsync_directory(self.directory)
        return removed

    # ------------------------------------------------------------------ #
    # Introspection / lifecycle
    # ------------------------------------------------------------------ #

    @property
    def wal(self) -> WriteAheadLog:
        """The live WAL segment."""
        return self._wal

    @property
    def generation(self) -> int:
        """The currently published generation number."""
        return int(self.manifest["generation"])

    def stats(self) -> Dict[str, object]:
        """Durability block for ``QueryService.stats()`` / ``/stats``."""
        return {
            "directory": str(self.directory),
            "generation": self.generation,
            "epoch": self.updater.epoch,
            "checkpoints": self.checkpoints,
            "generations_gcd": self.generations_gcd,
            "wal": self._wal.stats(),
            "recovery": self.recovery.to_dict(),
        }

    def close(self) -> None:
        """Sync and close the WAL (idempotent); the store stays readable."""
        if self._closed:
            return
        self._closed = True
        self.updater.attach_wal(None)
        self._wal.close()

    def __enter__(self) -> "DurableStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


__all__ = [
    "MANIFEST_NAME",
    "DurableStore",
    "RecoveryReport",
    "read_manifest",
    "write_manifest",
]
