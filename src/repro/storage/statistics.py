"""Dataset-level descriptive statistics (the Table-1 numbers)."""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict

import numpy as np

from ..graph.statistics import compute_statistics as compute_graph_statistics
from .dataset import Dataset


@dataclass(frozen=True)
class DatasetStatistics:
    """Corpus statistics of a dataset, as reported in dataset tables."""

    name: str
    num_users: int
    num_edges: int
    avg_degree: float
    num_items: int
    num_tags: int
    num_actions: int
    avg_actions_per_user: float
    avg_tags_per_item: float
    avg_items_per_tag: float
    max_tag_frequency: int
    inverted_index_postings: int
    social_index_entries: int
    index_memory_bytes: int

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict view for result tables."""
        return asdict(self)


def compute_dataset_statistics(dataset: Dataset) -> DatasetStatistics:
    """Compute the full :class:`DatasetStatistics` summary of a dataset."""
    tagging = dataset.tagging
    tags = tagging.tags()
    active_users = tagging.users()
    items = tagging.items()

    actions_per_user = np.array(
        [tagging.activity(user) for user in active_users], dtype=np.float64
    ) if active_users else np.zeros(0)

    tags_per_item: Dict[int, int] = {}
    for tag in tags:
        for item_id in tagging.items_for_tag(tag):
            tags_per_item[item_id] = tags_per_item.get(item_id, 0) + 1
    tags_per_item_values = np.array(list(tags_per_item.values()), dtype=np.float64) \
        if tags_per_item else np.zeros(0)

    items_per_tag = np.array(
        [len(tagging.items_for_tag(tag)) for tag in tags], dtype=np.float64
    ) if tags else np.zeros(0)

    max_tag_frequency = max(
        (dataset.inverted_index.max_frequency(tag) for tag in tags), default=0
    )

    index_memory = dataset.inverted_index.memory_bytes() + dataset.social_index.memory_bytes() \
        + dataset.endorser_index.memory_bytes() + dataset.graph.memory_bytes()

    return DatasetStatistics(
        name=dataset.name,
        num_users=dataset.num_users,
        num_edges=dataset.graph.num_edges,
        avg_degree=float(dataset.graph.degrees().mean()) if dataset.num_users else 0.0,
        num_items=len(items),
        num_tags=len(tags),
        num_actions=dataset.num_actions,
        avg_actions_per_user=float(actions_per_user.mean()) if actions_per_user.size else 0.0,
        avg_tags_per_item=float(tags_per_item_values.mean()) if tags_per_item_values.size else 0.0,
        avg_items_per_tag=float(items_per_tag.mean()) if items_per_tag.size else 0.0,
        max_tag_frequency=int(max_tag_frequency),
        inverted_index_postings=dataset.inverted_index.num_postings(),
        social_index_entries=dataset.social_index.num_entries(),
        index_memory_bytes=int(index_memory),
    )


def graph_statistics_row(dataset: Dataset) -> Dict[str, object]:
    """Graph-level statistics of the dataset's social network as a table row."""
    stats = compute_graph_statistics(dataset.graph)
    row = stats.to_dict()
    row["name"] = dataset.name
    return row
