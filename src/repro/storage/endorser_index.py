"""Per-tag CSR index of item → endorser (tagger) ids.

The social component of the blended score is, for every candidate item, a
sum of the seeker's proximity over the item's endorsers.  Scalar scoring
walks a Python set per ``(item, tag)`` pair; the endorser index stores the
same relation in a compressed-sparse-row layout per tag so the social mass
of a whole block of candidates is a single gather + segmented reduction:

``mass = np.add.reduceat(prox[taggers], offsets[:-1])``

Layout per tag (see :class:`TagEndorsers`):

* ``item_ids`` — the items carrying the tag, ascending (binary-searchable);
* ``frequencies`` — distinct-endorser counts aligned with ``item_ids``;
* ``offsets`` — CSR offsets of length ``len(item_ids) + 1``;
* ``taggers`` — concatenated endorser ids, ascending within each segment.

Every segment is non-empty by construction (an item appears only when at
least one user endorsed it with the tag), which keeps ``reduceat`` exact.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .tagging import TaggingStore


class TagEndorsers:
    """CSR arrays of one tag's item → endorser relation (read-only)."""

    __slots__ = ("tag", "item_ids", "frequencies", "offsets", "taggers",
                 "_sorted_taggers", "_sorted_positions")

    def __init__(self, tag: str, item_ids: np.ndarray, frequencies: np.ndarray,
                 offsets: np.ndarray, taggers: np.ndarray) -> None:
        self.tag = tag
        self.item_ids = item_ids
        self.frequencies = frequencies
        self.offsets = offsets
        self.taggers = taggers
        # Lazily built tagger-sorted view (see seeker_flags): built on first
        # use so arena-mapped bundles stay zero-cost until queried.
        self._sorted_taggers: np.ndarray = None  # type: ignore[assignment]
        self._sorted_positions: np.ndarray = None  # type: ignore[assignment]

    def __len__(self) -> int:
        return int(self.item_ids.shape[0])

    @property
    def num_entries(self) -> int:
        """Total number of ``(item, tagger)`` pairs for this tag."""
        return int(self.taggers.shape[0])

    def taggers_of(self, item_id: int) -> np.ndarray:
        """Endorser ids of one item (empty array when the item lacks the tag)."""
        position = int(np.searchsorted(self.item_ids, item_id))
        if position >= len(self) or int(self.item_ids[position]) != item_id:
            return self.taggers[0:0]
        return self.taggers[self.offsets[position]:self.offsets[position + 1]]

    def social_mass(self, proximity: np.ndarray) -> np.ndarray:
        """Proximity-weighted endorser mass of every item carrying the tag.

        ``proximity`` is a dense per-user array (the seeker's entry must be
        zero, which every :meth:`~repro.proximity.base.ProximityMeasure.vector_array`
        guarantees).  Returns one float per entry of :attr:`item_ids`.
        """
        if len(self) == 0:
            return np.zeros(0, dtype=np.float64)
        return np.add.reduceat(proximity[self.taggers], self.offsets[:-1])

    def positions_of(self, item_ids: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Locate ``item_ids`` (ascending) in this tag's item array.

        Returns ``(positions, found)`` where ``found`` marks the queried
        items that carry the tag and ``positions`` indexes :attr:`item_ids`
        for them (positions of absent items are clipped and must be masked
        with ``found``).
        """
        if len(self) == 0:
            return (np.zeros(item_ids.shape[0], dtype=np.int64),
                    np.zeros(item_ids.shape[0], dtype=bool))
        positions = np.searchsorted(self.item_ids, item_ids)
        positions = np.minimum(positions, len(self) - 1)
        found = self.item_ids[positions] == item_ids
        return positions, found

    def seeker_flags(self, seeker: int) -> np.ndarray:
        """Boolean per item: did the seeker endorse it with this tag?

        Answered in ``O(log E + hits)`` from a tagger-sorted view of the
        CSR built lazily on first use, instead of scanning every ``(item,
        tagger)`` entry per query: ``_sorted_taggers`` is the tagger column
        in ascending order and ``_sorted_positions`` maps each sorted entry
        back to its item row.
        """
        flags = np.zeros(len(self), dtype=bool)
        if len(self) == 0:
            return flags
        sorted_taggers = self._sorted_taggers
        if sorted_taggers is None:
            order = np.argsort(self.taggers, kind="stable")
            sorted_taggers = self.taggers[order]
            # Publish positions before taggers: concurrent readers gate on
            # _sorted_taggers, so both fields must be set once they see it.
            # (A racing duplicate build is harmless — same arrays.)
            self._sorted_positions = \
                np.searchsorted(self.offsets, order, side="right") - 1
            self._sorted_taggers = sorted_taggers
        lo = int(np.searchsorted(sorted_taggers, seeker, side="left"))
        hi = int(np.searchsorted(sorted_taggers, seeker, side="right"))
        if hi > lo:
            flags[self._sorted_positions[lo:hi]] = True
        return flags

    def seeker_count(self, seeker: int) -> int:
        """Number of items the seeker endorsed with this tag (``O(log E)``).

        The cheap precursor to :meth:`seeker_flags`: callers that only need
        "did the seeker touch this tag at all?" (per-query charge
        adjustments) skip the flag-array allocation and gather when the
        answer is 0 — the common case for tags outside the seeker's own
        profile.
        """
        if len(self) == 0:
            return 0
        if self._sorted_taggers is None:
            self.seeker_flags(seeker)  # builds the sorted view
        sorted_taggers = self._sorted_taggers
        lo = int(np.searchsorted(sorted_taggers, seeker, side="left"))
        hi = int(np.searchsorted(sorted_taggers, seeker, side="right"))
        return hi - lo

    def memory_bytes(self) -> int:
        """Approximate memory footprint of the CSR arrays in bytes."""
        return int(self.item_ids.nbytes + self.frequencies.nbytes
                   + self.offsets.nbytes + self.taggers.nbytes)


class EndorserIndex:
    """Tag → :class:`TagEndorsers` CSR bundle over the tagging relation.

    This is the third derived index of a dataset (next to the inverted and
    social indexes) and the backbone of the vectorized scoring kernels.
    """

    def __init__(self) -> None:
        self._tags: Dict[str, TagEndorsers] = {}
        #: Bumped whenever a delta is folded in.  Consumers that memoise
        #: derived state (the scoring model's candidate blocks) key their
        #: caches on ``(id(index), version)`` so incremental, in-place
        #: maintenance invalidates them exactly like an object swap would.
        self.version = 0

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def build(cls, tagging: TaggingStore) -> "EndorserIndex":
        """Build the per-tag CSR arrays from a tagging store."""
        index = cls()
        for tag in tagging.tags():
            items: List[int] = sorted(tagging.items_for_tag(tag))
            if not items:
                continue
            offsets = np.zeros(len(items) + 1, dtype=np.int64)
            segments: List[List[int]] = []
            for position, item_id in enumerate(items):
                # Sorted segments make the reduction order deterministic and
                # identical to the scalar scorer's iteration order.
                taggers = list(tagging.taggers_sorted(item_id, tag))
                segments.append(taggers)
                offsets[position + 1] = offsets[position] + len(taggers)
            taggers_flat = np.array(
                [tagger for segment in segments for tagger in segment],
                dtype=np.int64,
            ) if offsets[-1] else np.zeros(0, dtype=np.int64)
            index._tags[tag] = TagEndorsers(
                tag=tag,
                item_ids=np.array(items, dtype=np.int64),
                frequencies=np.diff(offsets),
                offsets=offsets,
                taggers=taggers_flat,
            )
        return index

    # ------------------------------------------------------------------ #
    # Incremental maintenance
    # ------------------------------------------------------------------ #

    def apply_delta(self, added: Mapping[str, Mapping[int, Sequence[int]]]
                    ) -> None:
        """Merge new ``tag -> item -> [taggers]`` pairs into the touched tags.

        Each touched tag's CSR bundle is replaced wholesale with a merged
        one (O(tag size), not O(corpus)); untouched tags keep their —
        possibly arena-mapped — arrays by reference.  The replaced bundles
        are byte-identical to what :meth:`build` would produce from the
        merged tagging store, so readers racing the swap see either the old
        or the new bundle, both internally consistent.
        """
        from .delta import merged_tag_endorsers

        touched = False
        for tag, items in added.items():
            if not items:
                continue
            self._tags[tag] = merged_tag_endorsers(tag, self._tags.get(tag),
                                                   items)
            touched = True
        if touched:
            self.version += 1

    def snapshot(self) -> Dict[str, TagEndorsers]:
        """A frozen ``tag -> bundle`` view of the current state.

        The returned dict is decoupled from future :meth:`apply_delta`
        calls (which replace entries in ``self``); the bundles themselves
        are immutable.  :class:`repro.storage.arena.ArenaTaggingStore` uses
        this as its delta-overlay *base*, so its merged reads never
        double-count a delta that was also folded into the live index.
        """
        return dict(self._tags)

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #

    def __contains__(self, tag: str) -> bool:
        return tag in self._tags

    def __len__(self) -> int:
        return len(self._tags)

    def tags(self) -> List[str]:
        """All indexed tags in sorted order."""
        return sorted(self._tags)

    def for_tag(self, tag: str) -> Optional[TagEndorsers]:
        """The CSR bundle of ``tag``, or ``None`` for unknown tags."""
        return self._tags.get(tag)

    def candidate_items(self, tags: Tuple[str, ...]) -> np.ndarray:
        """Ascending union of the items carrying any of ``tags``."""
        arrays = [self._tags[tag].item_ids for tag in tags if tag in self._tags]
        if not arrays:
            return np.zeros(0, dtype=np.int64)
        if len(arrays) == 1:
            return arrays[0]
        return np.unique(np.concatenate(arrays))

    def num_entries(self) -> int:
        """Total number of ``(item, tag, tagger)`` entries."""
        return sum(bundle.num_entries for bundle in self._tags.values())

    def memory_bytes(self) -> int:
        """Approximate memory footprint of all CSR arrays in bytes."""
        return sum(bundle.memory_bytes() for bundle in self._tags.values()) \
            + len(self._tags) * 64
