"""Delta-merge kernels of the live-update write path.

The array-backed hot structures (posting lists, the per-tag endorser CSR,
the per-tag social CSR, the arena tagging store) are frozen once built:
their numpy arrays — often read-only ``np.memmap`` views into the index
arena — are never mutated in place.  Live updates therefore work on
**delta overlays**: a small in-memory delta accumulates the new facts and
reads merge it with the frozen base, until a **compaction** folds the delta
back into fresh contiguous arrays.

This module holds the merge kernels shared by those structures.  Every
kernel reproduces, entry for entry, the layout the corresponding
``*.build`` constructor would produce from the merged relation — same sort
keys, same tie-breaks, same dtypes — so a delta-merged read is
indistinguishable from a from-scratch rebuild (the property
``tests/property/test_update_equivalence.py`` pins down).

The deltas themselves are plain dictionaries produced by
:meth:`repro.storage.updates.DatasetUpdater.add_actions` from the batch of
*newly recorded* (already deduplicated) actions:

* ``tag -> item -> [new taggers]`` for the endorser CSR,
* ``tag -> item -> extra distinct-endorser count`` for posting lists,
* ``(user, tag) -> [new items]`` for the social index.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .endorser_index import TagEndorsers
from .inverted_index import PostingList

_EMPTY_IDS = np.zeros(0, dtype=np.int64)


def merge_sorted_disjoint(base: np.ndarray, extra: Sequence[int]) -> np.ndarray:
    """Merge an ascending array with a disjoint ascending sequence.

    The store-level deduplication guarantees the two sides never share an
    element, so a concatenate + sort is an exact merge.  Returns ``base``
    itself (zero-copy) when ``extra`` is empty.
    """
    if not len(extra):
        return base
    merged = np.concatenate([np.asarray(base, dtype=np.int64),
                             np.asarray(extra, dtype=np.int64)])
    merged.sort()
    return merged


def merged_counts(base: Optional[PostingList],
                  extra_counts: Mapping[int, int]) -> Dict[int, int]:
    """One tag's ``item -> frequency`` map with increments applied."""
    counts: Dict[int, int] = {}
    if base is not None and len(base):
        counts = dict(zip(base.item_ids.tolist(), base.frequencies.tolist()))
    for item_id, extra in extra_counts.items():
        counts[item_id] = counts.get(item_id, 0) + int(extra)
    return counts


def posting_list_from_counts(counts: Mapping[int, int]
                             ) -> Tuple[PostingList, int]:
    """Build ``(postings, max_frequency)`` from an ``item -> frequency`` map.

    Ordered by decreasing frequency with ties broken by ascending item id —
    byte-identical to what :meth:`InvertedIndex.build` produces from the
    merged tagging store.
    """
    entries = sorted(counts.items(), key=lambda entry: (-entry[1], entry[0]))
    if not entries:
        return PostingList(_EMPTY_IDS, _EMPTY_IDS), 0
    item_ids = np.array([item_id for item_id, _ in entries], dtype=np.int64)
    frequencies = np.array([frequency for _, frequency in entries],
                           dtype=np.int64)
    return PostingList(item_ids, frequencies), int(frequencies[0])


def merged_tag_endorsers(tag: str, base: Optional[TagEndorsers],
                         added: Mapping[int, Sequence[int]]) -> TagEndorsers:
    """One tag's endorser CSR with new ``item -> taggers`` pairs merged in.

    Items stay ascending, taggers stay ascending within each segment, and
    segments stay non-empty — the invariants ``reduceat``-based scoring and
    the binary-search lookups rely on.  The base arrays are left untouched
    (they may be read-only arena views); every merged segment is a fresh
    array, untouched segments are reused by reference.
    """
    segments: Dict[int, np.ndarray] = {}
    if base is not None:
        item_list = base.item_ids.tolist()
        offsets = base.offsets
        for position, item_id in enumerate(item_list):
            segments[item_id] = base.taggers[int(offsets[position]):
                                             int(offsets[position + 1])]
    for item_id, taggers in added.items():
        if not len(taggers):
            continue
        segments[int(item_id)] = merge_sorted_disjoint(
            segments.get(int(item_id), _EMPTY_IDS), sorted(taggers))
    items = sorted(segments)
    offsets = np.zeros(len(items) + 1, dtype=np.int64)
    parts: List[np.ndarray] = []
    for position, item_id in enumerate(items):
        segment = segments[item_id]
        parts.append(segment)
        offsets[position + 1] = offsets[position] + segment.shape[0]
    taggers_flat = np.concatenate(parts) if parts else _EMPTY_IDS
    return TagEndorsers(
        tag=tag,
        item_ids=np.array(items, dtype=np.int64),
        frequencies=np.diff(offsets),
        offsets=offsets,
        taggers=np.ascontiguousarray(taggers_flat, dtype=np.int64),
    )


def posting_deltas(by_tag: Mapping[str, Mapping[int, Sequence[int]]]
                   ) -> Dict[str, Dict[int, int]]:
    """Collapse an endorser delta into per-item frequency increments."""
    return {
        tag: {item_id: len(taggers) for item_id, taggers in items.items()}
        for tag, items in by_tag.items()
    }


__all__ = [
    "merge_sorted_disjoint",
    "merged_counts",
    "merged_tag_endorsers",
    "posting_deltas",
    "posting_list_from_counts",
]
