"""Frequency-ordered inverted index over the tagging relation.

For each tag ``t`` the index stores the posting list of items endorsed with
``t``, sorted by decreasing *tag frequency* (number of distinct endorsers).
This is the classic sorted-access source of threshold-style top-k
algorithms: reading the list front-to-back yields items in decreasing
textual score, and the frequency of the next unread entry is an upper bound
for every unseen item.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from ..errors import UnknownTagError
from .tagging import TaggingStore


@dataclass(frozen=True)
class Posting:
    """One entry of a tag's posting list."""

    item_id: int
    frequency: int

    def to_tuple(self) -> Tuple[int, int]:
        """Return ``(item_id, frequency)``."""
        return (self.item_id, self.frequency)


class PostingListCursor:
    """Sequential-access cursor over one tag's posting list.

    The cursor is the unit the access accountant charges for "sequential
    accesses": each :meth:`next` call reads one posting.
    """

    def __init__(self, tag: str, postings: Tuple[Posting, ...]) -> None:
        self._tag = tag
        self._postings = postings
        self._position = 0

    @property
    def tag(self) -> str:
        """Tag this cursor iterates over."""
        return self._tag

    @property
    def position(self) -> int:
        """Number of postings consumed so far."""
        return self._position

    def exhausted(self) -> bool:
        """Whether every posting has been consumed."""
        return self._position >= len(self._postings)

    def peek_frequency(self) -> int:
        """Frequency of the next unread posting (0 when exhausted).

        This is the textual-score upper bound for any item not yet seen on
        this list.
        """
        if self.exhausted():
            return 0
        return self._postings[self._position].frequency

    def next(self) -> Optional[Posting]:
        """Consume and return the next posting, or ``None`` when exhausted."""
        if self.exhausted():
            return None
        posting = self._postings[self._position]
        self._position += 1
        return posting

    def remaining(self) -> int:
        """Number of unread postings."""
        return len(self._postings) - self._position


class InvertedIndex:
    """Tag → frequency-ordered posting list, plus per-tag statistics."""

    def __init__(self) -> None:
        self._postings: Dict[str, Tuple[Posting, ...]] = {}
        self._max_frequency: Dict[str, int] = {}
        self._frequency: Dict[Tuple[str, int], int] = {}

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def build(cls, tagging: TaggingStore) -> "InvertedIndex":
        """Build the index from a tagging store."""
        index = cls()
        for tag in tagging.tags():
            entries: List[Posting] = []
            for item_id in tagging.items_for_tag(tag):
                frequency = tagging.tag_frequency(item_id, tag)
                if frequency > 0:
                    entries.append(Posting(item_id=item_id, frequency=frequency))
            # Sort by decreasing frequency, breaking ties by item id so the
            # order (and therefore every algorithm's access trace) is
            # deterministic.
            entries.sort(key=lambda posting: (-posting.frequency, posting.item_id))
            index._postings[tag] = tuple(entries)
            index._max_frequency[tag] = entries[0].frequency if entries else 0
            for posting in entries:
                index._frequency[(tag, posting.item_id)] = posting.frequency
        return index

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #

    def __contains__(self, tag: str) -> bool:
        return tag in self._postings

    def tags(self) -> List[str]:
        """All indexed tags in sorted order."""
        return sorted(self._postings)

    def has_tag(self, tag: str) -> bool:
        """Whether the tag has a (possibly empty) posting list."""
        return tag in self._postings

    def postings(self, tag: str) -> Tuple[Posting, ...]:
        """The full posting list of ``tag`` (raises for unknown tags)."""
        try:
            return self._postings[tag]
        except KeyError:
            raise UnknownTagError(tag) from None

    def cursor(self, tag: str) -> PostingListCursor:
        """Sequential cursor over ``tag``'s posting list.

        Unknown tags yield an empty cursor rather than an error: a query may
        legitimately use a tag nobody has employed yet.
        """
        return PostingListCursor(tag, self._postings.get(tag, ()))

    def frequency(self, item_id: int, tag: str) -> int:
        """Random-access lookup of an item's frequency for a tag (0 if absent)."""
        return self._frequency.get((tag, item_id), 0)

    def max_frequency(self, tag: str) -> int:
        """Largest frequency on ``tag``'s posting list (0 for unknown tags).

        Because frequency counts distinct endorsers and proximities are at
        most 1, this value also upper-bounds the *social* mass any single
        item can accumulate for the tag; both scoring components are
        normalised by it.
        """
        return self._max_frequency.get(tag, 0)

    def list_length(self, tag: str) -> int:
        """Number of postings for ``tag`` (0 for unknown tags)."""
        return len(self._postings.get(tag, ()))

    def num_postings(self) -> int:
        """Total number of postings across all tags."""
        return sum(len(postings) for postings in self._postings.values())

    def iter_all(self) -> Iterator[Tuple[str, Posting]]:
        """Yield ``(tag, posting)`` pairs across the whole index."""
        for tag in self.tags():
            for posting in self._postings[tag]:
                yield tag, posting

    def memory_bytes(self) -> int:
        """Approximate memory footprint of the posting lists in bytes."""
        # Two ints per posting plus dict-entry overhead approximation.
        return self.num_postings() * 32 + len(self._postings) * 64
