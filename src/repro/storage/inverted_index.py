"""Frequency-ordered inverted index over the tagging relation.

For each tag ``t`` the index stores the posting list of items endorsed with
``t``, sorted by decreasing *tag frequency* (number of distinct endorsers).
This is the classic sorted-access source of threshold-style top-k
algorithms: reading the list front-to-back yields items in decreasing
textual score, and the frequency of the next unread entry is an upper bound
for every unseen item.

Storage layout: each posting list is a pair of parallel numpy int64 arrays
(``item_ids`` / ``frequencies``) so the vectorized scoring kernels can
consume whole lists (or blocks of them) without materialising Python
objects.  The classic :class:`Posting` / :class:`PostingListCursor` API is
kept as a thin view over the arrays for the scalar algorithms and tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

import numpy as np

from ..errors import UnknownTagError
from .tagging import TaggingStore

_EMPTY_IDS = np.zeros(0, dtype=np.int64)
_EMPTY_FREQS = np.zeros(0, dtype=np.int64)


@dataclass(frozen=True)
class Posting:
    """One entry of a tag's posting list."""

    item_id: int
    frequency: int

    def to_tuple(self) -> Tuple[int, int]:
        """Return ``(item_id, frequency)``."""
        return (self.item_id, self.frequency)


class PostingList:
    """One tag's posting list as parallel ``item_ids`` / ``frequencies`` arrays.

    Both arrays are ordered by decreasing frequency with ties broken by
    ascending item id, exactly like the tuple-of-:class:`Posting` view.
    The arrays are owned by the index and must not be mutated.
    """

    __slots__ = ("item_ids", "frequencies")

    def __init__(self, item_ids: np.ndarray, frequencies: np.ndarray) -> None:
        self.item_ids = item_ids
        self.frequencies = frequencies

    def __len__(self) -> int:
        return int(self.item_ids.shape[0])

    def posting(self, position: int) -> Posting:
        """Materialise one entry as a :class:`Posting` view."""
        return Posting(item_id=int(self.item_ids[position]),
                       frequency=int(self.frequencies[position]))


_EMPTY_LIST = PostingList(_EMPTY_IDS, _EMPTY_FREQS)


class PostingListCursor:
    """Sequential-access cursor over one tag's posting list.

    The cursor is the unit the access accountant charges for "sequential
    accesses": each :meth:`next` call reads one posting, and
    :meth:`next_block` reads up to ``n`` postings in one batched step for
    the vectorized consumers (each posting in the block still counts as one
    sequential access).
    """

    __slots__ = ("_tag", "_list", "_position")

    def __init__(self, tag: str, postings: PostingList) -> None:
        self._tag = tag
        self._list = postings
        self._position = 0

    @property
    def tag(self) -> str:
        """Tag this cursor iterates over."""
        return self._tag

    @property
    def position(self) -> int:
        """Number of postings consumed so far."""
        return self._position

    def exhausted(self) -> bool:
        """Whether every posting has been consumed."""
        return self._position >= len(self._list)

    def peek_frequency(self) -> int:
        """Frequency of the next unread posting (0 when exhausted).

        This is the textual-score upper bound for any item not yet seen on
        this list.
        """
        if self.exhausted():
            return 0
        return int(self._list.frequencies[self._position])

    def next(self) -> Optional[Posting]:
        """Consume and return the next posting, or ``None`` when exhausted."""
        if self.exhausted():
            return None
        posting = self._list.posting(self._position)
        self._position += 1
        return posting

    def next_block(self, n: int) -> Tuple[np.ndarray, np.ndarray]:
        """Consume up to ``n`` postings, returned as ``(item_ids, frequencies)``.

        The returned arrays are read-only views into the index storage; an
        empty pair means the cursor is exhausted.  This is the batched
        sequential-access path of the vectorized kernels.
        """
        if n < 0:
            raise ValueError(f"block size must be non-negative, got {n}")
        start = self._position
        end = min(start + n, len(self._list))
        self._position = end
        return (self._list.item_ids[start:end], self._list.frequencies[start:end])

    def remaining(self) -> int:
        """Number of unread postings."""
        return len(self._list) - self._position


class InvertedIndex:
    """Tag → frequency-ordered posting list, plus per-tag statistics."""

    def __init__(self) -> None:
        self._lists: Dict[str, PostingList] = {}
        self._posting_views: Dict[str, Tuple[Posting, ...]] = {}
        self._max_frequency: Dict[str, int] = {}
        self._frequency: Dict[Tuple[str, int], int] = {}

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def build(cls, tagging: TaggingStore) -> "InvertedIndex":
        """Build the index from a tagging store."""
        index = cls()
        for tag in tagging.tags():
            entries: List[Tuple[int, int]] = []
            for item_id in tagging.items_for_tag(tag):
                frequency = tagging.tag_frequency(item_id, tag)
                if frequency > 0:
                    entries.append((item_id, frequency))
            # Sort by decreasing frequency, breaking ties by item id so the
            # order (and therefore every algorithm's access trace) is
            # deterministic.
            entries.sort(key=lambda entry: (-entry[1], entry[0]))
            if entries:
                item_ids = np.array([item_id for item_id, _ in entries], dtype=np.int64)
                frequencies = np.array([freq for _, freq in entries], dtype=np.int64)
            else:
                item_ids, frequencies = _EMPTY_IDS, _EMPTY_FREQS
            index._lists[tag] = PostingList(item_ids, frequencies)
            index._max_frequency[tag] = entries[0][1] if entries else 0
            for item_id, frequency in entries:
                index._frequency[(tag, item_id)] = frequency
        return index

    # ------------------------------------------------------------------ #
    # Incremental maintenance
    # ------------------------------------------------------------------ #

    def apply_delta(self, added: Mapping[str, Mapping[int, int]]) -> None:
        """Fold per-item frequency increments into the touched tags' lists.

        ``added`` maps ``tag -> item -> extra distinct-endorser count`` (the
        shape :func:`repro.storage.delta.posting_deltas` produces from a
        batch of newly recorded actions).  Only the touched tags' posting
        lists are re-sorted — O(list length) per touched tag instead of a
        full rebuild over the whole action log — and the refreshed arrays
        are byte-identical to what :meth:`build` would produce from the
        merged store.  Untouched tags keep their (possibly arena-mapped)
        arrays by reference.
        """
        from .delta import merged_counts, posting_list_from_counts

        for tag, extras in added.items():
            if not extras:
                continue
            counts = merged_counts(self._lists.get(tag), extras)
            postings, max_frequency = posting_list_from_counts(counts)
            self._lists[tag] = postings
            self._max_frequency[tag] = max_frequency
            self._posting_views.pop(tag, None)
            # Random-access lookups: only the touched items shifted.
            for item_id in extras:
                self._frequency[(tag, item_id)] = counts[item_id]

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #

    def __contains__(self, tag: str) -> bool:
        return tag in self._lists

    def tags(self) -> List[str]:
        """All indexed tags in sorted order."""
        return sorted(self._lists)

    def has_tag(self, tag: str) -> bool:
        """Whether the tag has a (possibly empty) posting list."""
        return tag in self._lists

    def postings(self, tag: str) -> Tuple[Posting, ...]:
        """The full posting list of ``tag`` (raises for unknown tags).

        The tuple-of-:class:`Posting` view is materialised lazily from the
        backing arrays and cached, so scalar consumers keep their API while
        the arrays remain the single source of truth.
        """
        if tag not in self._lists:
            raise UnknownTagError(tag)
        view = self._posting_views.get(tag)
        if view is None:
            postings = self._lists[tag]
            view = tuple(
                Posting(item_id=int(item_id), frequency=int(frequency))
                for item_id, frequency in zip(postings.item_ids.tolist(),
                                              postings.frequencies.tolist())
            )
            self._posting_views[tag] = view
        return view

    def arrays(self, tag: str) -> PostingList:
        """The array-backed posting list of ``tag`` (empty for unknown tags).

        This is the zero-copy entry point of the vectorized kernels; the
        returned arrays must not be mutated.
        """
        return self._lists.get(tag, _EMPTY_LIST)

    def cursor(self, tag: str) -> PostingListCursor:
        """Sequential cursor over ``tag``'s posting list.

        Unknown tags yield an empty cursor rather than an error: a query may
        legitimately use a tag nobody has employed yet.
        """
        return PostingListCursor(tag, self._lists.get(tag, _EMPTY_LIST))

    def frequency(self, item_id: int, tag: str) -> int:
        """Random-access lookup of an item's frequency for a tag (0 if absent)."""
        return self._frequency.get((tag, item_id), 0)

    def max_frequency(self, tag: str) -> int:
        """Largest frequency on ``tag``'s posting list (0 for unknown tags).

        Because frequency counts distinct endorsers and proximities are at
        most 1, this value also upper-bounds the *social* mass any single
        item can accumulate for the tag; both scoring components are
        normalised by it.
        """
        return self._max_frequency.get(tag, 0)

    def list_length(self, tag: str) -> int:
        """Number of postings for ``tag`` (0 for unknown tags)."""
        return len(self._lists.get(tag, _EMPTY_LIST))

    def num_postings(self) -> int:
        """Total number of postings across all tags."""
        return sum(len(postings) for postings in self._lists.values())

    def iter_all(self) -> Iterator[Tuple[str, Posting]]:
        """Yield ``(tag, posting)`` pairs across the whole index."""
        for tag in self.tags():
            for posting in self.postings(tag):
                yield tag, posting

    def memory_bytes(self) -> int:
        """Approximate memory footprint of the posting lists in bytes."""
        arrays = sum(
            int(postings.item_ids.nbytes + postings.frequencies.nbytes)
            for postings in self._lists.values()
        )
        return arrays + len(self._lists) * 64
