"""The dataset bundle: social graph + stores + indexes.

A :class:`Dataset` is the unit every algorithm, example and benchmark
operates on.  It owns the social graph, the user/item catalogues, the raw
tagging relation and the two derived indexes (inverted and social), and it
guarantees they are mutually consistent because they are always built
together from the same tagging store.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional

from ..errors import StorageError
from ..graph import SocialGraph
from .endorser_index import EndorserIndex
from .inverted_index import InvertedIndex
from .items import Item, ItemStore
from .social_index import SocialIndex
from .tagging import TaggingAction, TaggingStore
from .users import User, UserStore


@dataclass
class Dataset:
    """A complete social-tagging corpus ready for querying.

    Use :meth:`Dataset.build` instead of the raw constructor so the derived
    indexes are always consistent with the tagging store.
    """

    name: str
    graph: SocialGraph
    users: UserStore
    items: ItemStore
    tagging: TaggingStore
    inverted_index: InvertedIndex
    social_index: SocialIndex
    endorser_index: EndorserIndex
    holdout: Optional[TaggingStore] = field(default=None)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def build(cls, graph: SocialGraph, actions: Iterable[TaggingAction],
              name: str = "dataset",
              users: Optional[UserStore] = None,
              items: Optional[ItemStore] = None,
              holdout: Optional[TaggingStore] = None) -> "Dataset":
        """Assemble a dataset from a graph and a stream of tagging actions.

        Actions referencing users outside the graph are rejected, because a
        tagger who is not a node can never be reached by social expansion
        and would silently distort exact scores.
        """
        tagging = TaggingStore()
        user_store = users or UserStore.with_placeholder_users(graph.num_users)
        item_store = items or ItemStore()
        for action in actions:
            if not 0 <= action.user_id < graph.num_users:
                raise StorageError(
                    f"tagging action references user {action.user_id}, but the "
                    f"graph only has {graph.num_users} users"
                )
            tagging.add(action)
            item_store.ensure(action.item_id)
            user_store.ensure(action.user_id)
        return cls._from_tagging(graph, tagging, name=name, users=user_store,
                                 items=item_store, holdout=holdout)

    @classmethod
    def _from_tagging(cls, graph: SocialGraph, tagging: TaggingStore, name: str,
                      users: UserStore, items: ItemStore,
                      holdout: Optional[TaggingStore] = None) -> "Dataset":
        return cls(
            name=name,
            graph=graph,
            users=users,
            items=items,
            tagging=tagging,
            inverted_index=InvertedIndex.build(tagging),
            social_index=SocialIndex.build(tagging),
            endorser_index=EndorserIndex.build(tagging),
            holdout=holdout,
        )

    @classmethod
    def from_arena(cls, path) -> "Dataset":
        """Open a memory-mapped index arena written by ``repro build-arena``.

        All hot structures come back as zero-copy ``np.memmap`` views in
        their query-ready layout, so cold start skips the index rebuild the
        JSON snapshot loader pays (see :mod:`repro.storage.arena`).
        """
        from .arena import load_dataset_from_arena

        return load_dataset_from_arena(path)

    def to_arena(self, path, proximity=None):
        """Serialise this dataset (and optional built shards) into an arena file."""
        from .arena import build_arena

        return build_arena(self, path, proximity=proximity)

    def with_holdout(self, fraction: float, seed: int = 0) -> "Dataset":
        """Return a copy whose index excludes a per-user holdout slice.

        The withheld actions become the relevance ground truth for quality
        experiments (see :mod:`repro.eval`).
        """
        train, holdout = self.tagging.split_holdout(fraction, seed=seed)
        return Dataset._from_tagging(
            self.graph, train, name=self.name, users=self.users, items=self.items,
            holdout=holdout,
        )

    # ------------------------------------------------------------------ #
    # Convenience accessors
    # ------------------------------------------------------------------ #

    @property
    def num_users(self) -> int:
        """Number of users (graph nodes)."""
        return self.graph.num_users

    @property
    def num_items(self) -> int:
        """Number of catalogued items."""
        return len(self.items)

    @property
    def num_actions(self) -> int:
        """Number of distinct tagging actions in the indexed portion."""
        return len(self.tagging)

    @property
    def num_tags(self) -> int:
        """Number of distinct tags."""
        return len(self.tagging.tags())

    def tags(self) -> List[str]:
        """All distinct tags in sorted order."""
        return self.tagging.tags()

    def active_users(self) -> List[int]:
        """Users with at least one tagging action."""
        return self.tagging.users()

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"Dataset {self.name!r}: {self.num_users} users, "
            f"{self.graph.num_edges} edges, {self.num_items} items, "
            f"{self.num_tags} tags, {self.num_actions} actions"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Dataset(name={self.name!r}, users={self.num_users}, actions={self.num_actions})"
