"""Storage engine: catalogues, the tagging relation, and derived indexes."""

from .items import Item, ItemStore
from .users import User, UserStore
from .tagging import TaggingAction, TaggingStore
from .inverted_index import InvertedIndex, Posting, PostingList, PostingListCursor
from .endorser_index import EndorserIndex, TagEndorsers
from .social_index import SocialIndex
from .dataset import Dataset
from .persistence import load_dataset, save_dataset
from .arena import (
    Arena,
    attach_shards,
    build_arena,
    load_dataset_from_arena,
    load_shards,
)
from .partitioned import CorpusPartitions
from .statistics import DatasetStatistics, compute_dataset_statistics, graph_statistics_row
from .updates import DatasetUpdater, UpdateSummary, replay_trace
from .wal import (
    WriteAheadLog,
    WalRecord,
    WalScan,
    scan_wal,
    truncate_torn_tail,
)
from .durable import DurableStore, RecoveryReport, read_manifest, write_manifest

__all__ = [
    "Item",
    "ItemStore",
    "User",
    "UserStore",
    "TaggingAction",
    "TaggingStore",
    "InvertedIndex",
    "Posting",
    "PostingList",
    "PostingListCursor",
    "EndorserIndex",
    "TagEndorsers",
    "SocialIndex",
    "Dataset",
    "save_dataset",
    "load_dataset",
    "Arena",
    "attach_shards",
    "build_arena",
    "load_dataset_from_arena",
    "load_shards",
    "CorpusPartitions",
    "DatasetStatistics",
    "compute_dataset_statistics",
    "graph_statistics_row",
    "DatasetUpdater",
    "UpdateSummary",
    "replay_trace",
    "WriteAheadLog",
    "WalRecord",
    "WalScan",
    "scan_wal",
    "truncate_torn_tail",
    "DurableStore",
    "RecoveryReport",
    "read_manifest",
    "write_manifest",
]
