"""Memory-mapped index arena: every hot structure in one on-disk file.

Loading a snapshot through :mod:`repro.storage.persistence` replays JSON
lines into Python stores and *rebuilds* every derived index — sorting
posting lists, grouping endorser segments — which makes process cold start
scale with corpus size.  The arena removes that rebuild entirely: all the
array-backed hot structures are serialised **in their query-ready layout**
into a single versioned file and opened with ``np.memmap``, so a process
serves its first query after little more than an ``open`` + header parse:

* the social graph's CSR arrays (used as-is by :class:`SocialGraph`);
* the inverted index's frequency-ordered posting-list arrays;
* the endorser index's per-tag item → tagger CSR;
* the social index's per-tag user → item CSR;
* the raw tagging actions (tag names interned through a small tag table);
* optionally, the :class:`~repro.proximity.materialized.MaterializedProximity`
  shards — per-cluster proximity rows plus bound vectors.

File layout (little-endian)::

    magic "RPRARENA" | uint32 version | uint64 header_length
    header JSON  (meta + array manifest: name, dtype, shape, offset)
    64-byte-aligned raw array payloads

The scalar-path structures that are *not* arrays (the tagging store's hash
indexes, user/item profiles) are served by thin array-backed subclasses
that answer the hot lookups by binary search over the mapped arrays and
fall back to materialising the full Python store only when a cold path
(workload generation, holdout splitting) actually asks for it.

**Live updates** never invalidate the mapped arrays wholesale.  Each
array-backed view keeps a small in-memory **delta overlay** — new tagging
actions land in a plain :class:`TaggingStore` delta, new social-profile
entries in an overlay dict — and reads merge the frozen base with the
delta (see :mod:`repro.storage.delta`).  A **compaction** step folds the
delta back into fresh contiguous arrays once it grows past a threshold
(:meth:`repro.storage.updates.DatasetUpdater.compact`); because a merged
read and a compacted read are value-identical, the swap is safe to run
concurrently with lock-free readers: the frozen state lives in one holder
object replaced atomically.
"""

from __future__ import annotations

import json
import mmap
import os
import struct
import threading
from pathlib import Path
from typing import Dict, FrozenSet, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import PersistenceError, StorageError
from ..graph import SocialGraph
from ..obs.faults import fault_point
from ..proximity.landmarks import LandmarkProximity
from ..proximity.materialized import MaterializedProximity, ProximityShard
from .dataset import Dataset
from .delta import merge_sorted_disjoint
from .endorser_index import EndorserIndex, TagEndorsers
from .inverted_index import InvertedIndex, PostingList
from .items import Item, ItemStore
from .social_index import SocialIndex
from .tagging import TaggingAction, TaggingStore
from .users import User, UserStore

PathLike = Union[str, Path]

MAGIC = b"RPRARENA"
ARENA_VERSION = 1
_ALIGNMENT = 64
_PREAMBLE = struct.Struct("<8sIQ")
#: bytes written per chunk when streaming array payloads to disk; bounds the
#: writer's transient allocations regardless of array size.
_WRITE_CHUNK_BYTES = 16 * 1024 * 1024


def _align(offset: int) -> int:
    return (offset + _ALIGNMENT - 1) // _ALIGNMENT * _ALIGNMENT


def _release_mapped_pages(array: np.ndarray) -> None:
    """Evict a memmap-backed array's resident pages (data stays on disk).

    The streaming builder hands :func:`write_arena` scratch ``np.memmap``
    arrays whose touched pages would otherwise stay resident until process
    exit, so a large build's peak RSS would grow with the whole arena even
    though each page is needed only once.  ``madvise(MADV_DONTNEED)`` on a
    shared file mapping just unmaps the pages from this process — the page
    cache keeps the data and later reads fault it back in.  No-op for heap
    arrays and on platforms without ``madvise``.
    """
    mapped = getattr(array, "_mmap", None)
    if mapped is None or not hasattr(mapped, "madvise"):
        return
    advice = getattr(mmap, "MADV_DONTNEED", None)
    if advice is None:
        return
    try:
        if getattr(array, "mode", "r") not in ("r", "c"):
            array.flush()
        mapped.madvise(advice)
    except (OSError, ValueError):
        pass


class LazyRecordList:
    """A ``(length, factory)`` stand-in for a list of JSON record dicts.

    ``meta["users"]`` / ``meta["items"]`` are hundreds of thousands of tiny
    dicts at the corpus sizes the streaming builder targets — materialising
    them costs more RSS than every array buffer combined.  The builder
    passes this instead; :func:`write_arena` serialises it record-at-a-time
    into the exact bytes ``json.dumps`` would produce for the eager list.
    """

    __slots__ = ("_length", "_factory")

    def __init__(self, length: int, factory) -> None:
        self._length = int(length)
        self._factory = factory

    def __len__(self) -> int:
        return self._length

    def __getitem__(self, index: int):
        if not 0 <= index < self._length:
            raise IndexError(index)
        return self._factory(index)

    def __iter__(self):
        return (self._factory(index) for index in range(self._length))


def _encode_header(header: Dict[str, object]) -> bytes:
    """``json.dumps(header, sort_keys=True)`` with lazy meta lists spliced.

    Each :class:`LazyRecordList` under ``header["meta"]`` is first encoded
    as ``[]`` and then replaced by its records serialised one at a time —
    ``json.dumps`` renders a list as ``[`` + ``", ".join(records)`` + ``]``
    with the default separators, so the spliced bytes are identical to the
    eager encoding while only one record dict is ever alive.
    """
    meta = header.get("meta")
    lazy = {key: value for key, value in meta.items()
            if isinstance(value, LazyRecordList)} \
        if isinstance(meta, dict) else {}
    if not lazy:
        return json.dumps(header, sort_keys=True).encode("utf-8")
    plain = dict(header)
    plain["meta"] = {key: ([] if key in lazy else value)
                     for key, value in meta.items()}
    encoded = json.dumps(plain, sort_keys=True)
    for key, records in lazy.items():
        placeholder = json.dumps(key) + ": []"
        if encoded.count(placeholder) != 1:
            raise PersistenceError(
                f"cannot splice lazy meta entry {key!r} into the header")
        body = ", ".join(json.dumps(record, sort_keys=True)
                         for record in records)
        encoded = encoded.replace(
            placeholder, json.dumps(key) + ": [" + body + "]")
    return encoded.encode("utf-8")


def _write_array_chunked(handle, array: np.ndarray) -> None:
    """Write ``array``'s bytes in bounded slices.

    ``array.tobytes()`` materialises a full in-RAM copy of the payload —
    for a memmap-backed array that is exactly the allocation the streaming
    build works to avoid.  Writing ``_WRITE_CHUNK_BYTES``-sized slices keeps
    the writer's footprint constant while producing identical file bytes.
    """
    flat = array.reshape(-1)
    step = max(1, _WRITE_CHUNK_BYTES // max(1, array.dtype.itemsize))
    for start in range(0, flat.shape[0], step):
        handle.write(flat[start:start + step].tobytes())


# --------------------------------------------------------------------- #
# Low-level format
# --------------------------------------------------------------------- #

def write_arena(path: PathLike, meta: Dict[str, object],
                arrays: Dict[str, np.ndarray]) -> Path:
    """Write ``meta`` + named arrays in the arena format; returns the path.

    The write is **atomic**: the bytes go to ``<path>.tmp``, are fsynced,
    and only then renamed over the target with ``os.replace``.  An
    interrupted build can therefore never leave a half-written arena at
    the target path — readers see either the previous complete file or
    the new complete file, which is what lets compaction publish fresh
    generations while queries keep memory-mapping the old one.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp_path = path.with_name(path.name + ".tmp")
    manifest: List[Dict[str, object]] = []
    ordered: List[Tuple[str, np.ndarray]] = []
    for name, array in arrays.items():
        # Memmap-backed arrays from the streaming builder are already
        # contiguous; copying them into RAM here would defeat the bounded
        # write path, so only non-contiguous inputs are materialised.
        if not array.flags["C_CONTIGUOUS"]:
            array = np.ascontiguousarray(array)
        ordered.append((name, array))
        manifest.append({
            "name": name,
            "dtype": array.dtype.str,
            "shape": list(array.shape),
        })
    header: Dict[str, object] = {"meta": meta, "arrays": manifest}
    # Two-pass offset computation: the header length depends on the offsets
    # only through their decimal width, so size the header once without
    # them and reserve generous room (32 bytes per offset entry).
    encoded = _encode_header(header)
    data_start = _align(_PREAMBLE.size + len(encoded) + 32 * len(manifest) + 64)
    offset = data_start
    for entry, (_name, array) in zip(manifest, ordered):
        entry["offset"] = offset
        offset = _align(offset + array.nbytes)
    encoded = _encode_header(header)
    if _PREAMBLE.size + len(encoded) > data_start:
        raise PersistenceError("arena header overflowed its reserved space")
    try:
        with tmp_path.open("wb") as handle:
            handle.write(_PREAMBLE.pack(MAGIC, ARENA_VERSION, len(encoded)))
            handle.write(encoded)
            for entry, (_name, array) in zip(manifest, ordered):
                handle.seek(int(entry["offset"]))
                _write_array_chunked(handle, array)
                _release_mapped_pages(array)
            # Pad the file to the last aligned boundary so every mapped view
            # is in bounds.
            handle.seek(0, 2)
            if handle.tell() < offset:
                handle.truncate(offset)
            handle.flush()
            os.fsync(handle.fileno())
        fault_point("arena.before_replace")
        os.replace(tmp_path, path)
    except BaseException:
        # Never leave a stray .tmp behind a failed/killed build; the real
        # kill case (power loss) is covered by the rename being last.
        if tmp_path.exists():
            try:
                tmp_path.unlink()
            except OSError:
                pass
        raise
    _fsync_directory(path.parent)
    return path


def _fsync_directory(directory: Path) -> None:
    """Best-effort fsync of a directory so renames in it are durable."""
    try:
        fd = os.open(str(directory), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


class Arena:
    """An opened arena: parsed meta plus zero-copy array views.

    The backing buffer is an ``np.memmap`` in read-only mode; every array in
    :attr:`arrays` is a typed view into it.  Views must not be mutated.
    """

    def __init__(self, path: Path, meta: Dict[str, object],
                 arrays: Dict[str, np.ndarray], buffer: np.memmap) -> None:
        self.path = path
        self.meta = meta
        self.arrays = arrays
        self._buffer = buffer

    def __contains__(self, name: str) -> bool:
        return name in self.arrays

    def array(self, name: str) -> np.ndarray:
        """The named array view (raises for unknown names)."""
        try:
            return self.arrays[name]
        except KeyError:
            raise PersistenceError(f"arena {self.path} has no array {name!r}") from None

    @classmethod
    def open(cls, path: PathLike) -> "Arena":
        """Map an arena file; raises :class:`PersistenceError` on mismatch."""
        path = Path(path)
        try:
            with path.open("rb") as handle:
                preamble = handle.read(_PREAMBLE.size)
                if len(preamble) < _PREAMBLE.size:
                    raise PersistenceError(f"{path}: truncated arena preamble")
                magic, version, header_length = _PREAMBLE.unpack(preamble)
                if magic != MAGIC:
                    raise PersistenceError(f"{path}: not an arena file (bad magic)")
                if version != ARENA_VERSION:
                    raise PersistenceError(
                        f"{path}: unsupported arena version {version} "
                        f"(expected {ARENA_VERSION})")
                header = json.loads(handle.read(header_length).decode("utf-8"))
        except OSError as exc:
            raise PersistenceError(f"failed to read arena {path}: {exc}") from exc
        buffer = np.memmap(path, dtype=np.uint8, mode="r")
        arrays: Dict[str, np.ndarray] = {}
        for entry in header["arrays"]:
            dtype = np.dtype(str(entry["dtype"]))
            shape = tuple(int(dim) for dim in entry["shape"])
            count = int(np.prod(shape)) if shape else 1
            start = int(entry["offset"])
            end = start + count * dtype.itemsize
            if end > buffer.shape[0]:
                raise PersistenceError(
                    f"{path}: array {entry['name']!r} overruns the file")
            arrays[str(entry["name"])] = \
                buffer[start:end].view(dtype).reshape(shape)
        return cls(path, dict(header["meta"]), arrays, buffer)


# --------------------------------------------------------------------- #
# Building an arena from a dataset
# --------------------------------------------------------------------- #

def _concat(parts: Sequence[np.ndarray], dtype) -> np.ndarray:
    if not parts:
        return np.zeros(0, dtype=dtype)
    return np.concatenate([np.asarray(part, dtype=dtype) for part in parts]) \
        if len(parts) > 1 else np.asarray(parts[0], dtype=dtype)


def _action_arrays(store: TaggingStore, tag_ids: Dict[str, int]
                   ) -> Dict[str, np.ndarray]:
    actions = store.actions()
    return {
        "user_ids": np.array([a.user_id for a in actions], dtype=np.int64),
        "item_ids": np.array([a.item_id for a in actions], dtype=np.int64),
        "tag_ids": np.array([tag_ids[a.tag] for a in actions], dtype=np.int64),
        "timestamps": np.array([a.timestamp for a in actions], dtype=np.int64),
    }


def build_arena(dataset: Dataset, path: PathLike,
                proximity: Optional[MaterializedProximity] = None,
                landmarks: Optional[LandmarkProximity] = None) -> Path:
    """Serialise ``dataset`` (and optional built shards) into an arena file.

    ``landmarks`` additionally persists a landmark sketch's dense
    distance/hop arrays as the ``landmark.*`` section, so serving processes
    attach the precomputed sketch (:func:`attach_landmarks`) instead of
    re-running one Dijkstra per landmark at startup.
    """
    tags = dataset.tagging.tags()
    tag_ids = {tag: index for index, tag in enumerate(tags)}
    arrays: Dict[str, np.ndarray] = {}

    offsets, neighbours, weights = dataset.graph.csr_arrays()
    arrays["graph.offsets"] = offsets
    arrays["graph.neighbours"] = neighbours
    arrays["graph.weights"] = weights

    # Inverted index: frequency-ordered posting lists, concatenated in tag
    # order with a per-tag offsets array.
    inv_offsets = np.zeros(len(tags) + 1, dtype=np.int64)
    inv_items: List[np.ndarray] = []
    inv_freqs: List[np.ndarray] = []
    for index, tag in enumerate(tags):
        postings = dataset.inverted_index.arrays(tag)
        inv_items.append(postings.item_ids)
        inv_freqs.append(postings.frequencies)
        inv_offsets[index + 1] = inv_offsets[index] + len(postings)
    arrays["inverted.offsets"] = inv_offsets
    arrays["inverted.item_ids"] = _concat(inv_items, np.int64)
    arrays["inverted.frequencies"] = _concat(inv_freqs, np.int64)

    # Endorser index: per-tag item -> tagger CSR, flattened with a global
    # per-(tag, item) segment-offsets array.
    end_item_offsets = np.zeros(len(tags) + 1, dtype=np.int64)
    end_items: List[np.ndarray] = []
    end_freqs: List[np.ndarray] = []
    end_taggers: List[np.ndarray] = []
    segment_lengths: List[np.ndarray] = []
    for index, tag in enumerate(tags):
        bundle = dataset.endorser_index.for_tag(tag)
        if bundle is None:
            end_item_offsets[index + 1] = end_item_offsets[index]
            continue
        end_items.append(bundle.item_ids)
        end_freqs.append(bundle.frequencies)
        end_taggers.append(bundle.taggers)
        segment_lengths.append(np.diff(bundle.offsets))
        end_item_offsets[index + 1] = end_item_offsets[index] + len(bundle)
    lengths = _concat(segment_lengths, np.int64)
    segment_offsets = np.zeros(lengths.shape[0] + 1, dtype=np.int64)
    np.cumsum(lengths, out=segment_offsets[1:])
    arrays["endorser.item_offsets"] = end_item_offsets
    arrays["endorser.item_ids"] = _concat(end_items, np.int64)
    arrays["endorser.frequencies"] = _concat(end_freqs, np.int64)
    arrays["endorser.segment_offsets"] = segment_offsets
    arrays["endorser.taggers"] = _concat(end_taggers, np.int64)

    # Social index: per-tag user -> item CSR (the frontier expansion path).
    soc_user_offsets = np.zeros(len(tags) + 1, dtype=np.int64)
    soc_users: List[int] = []
    soc_lengths: List[int] = []
    soc_items: List[int] = []
    all_users = dataset.social_index.users()
    for index, tag in enumerate(tags):
        with_tag = 0
        for user in all_users:  # ascending, so each tag segment is sorted
            items = dataset.social_index.items_for(user, tag)
            if not items:
                continue
            soc_users.append(user)
            soc_lengths.append(len(items))
            soc_items.extend(items)
            with_tag += 1
        soc_user_offsets[index + 1] = soc_user_offsets[index] + with_tag
    soc_segment_offsets = np.zeros(len(soc_users) + 1, dtype=np.int64)
    np.cumsum(np.array(soc_lengths, dtype=np.int64), out=soc_segment_offsets[1:])
    arrays["social.user_offsets"] = soc_user_offsets
    arrays["social.user_ids"] = np.array(soc_users, dtype=np.int64)
    arrays["social.segment_offsets"] = soc_segment_offsets
    arrays["social.item_ids"] = np.array(soc_items, dtype=np.int64)

    for name, array in _action_arrays(dataset.tagging, tag_ids).items():
        arrays[f"actions.{name}"] = array
    if dataset.holdout is not None:
        holdout_tags = sorted(set(tag_ids) | set(dataset.holdout.tags()))
        holdout_ids = {tag: index for index, tag in enumerate(holdout_tags)}
        for name, array in _action_arrays(dataset.holdout, holdout_ids).items():
            arrays[f"holdout.{name}"] = array
        holdout_table: Optional[List[str]] = holdout_tags
    else:
        holdout_table = None

    materialized_meta: Optional[Dict[str, object]] = None
    if proximity is not None and proximity.built:
        shards = sorted(proximity.shards(), key=lambda shard: shard.cluster_id)
        member_offsets = np.zeros(len(shards) + 1, dtype=np.int64)
        row_lengths: List[np.ndarray] = []
        for index, shard in enumerate(shards):
            member_offsets[index + 1] = member_offsets[index] + len(shard)
            row_lengths.append(np.diff(shard.offsets))
        flat_lengths = _concat(row_lengths, np.int64)
        row_offsets = np.zeros(flat_lengths.shape[0] + 1, dtype=np.int64)
        np.cumsum(flat_lengths, out=row_offsets[1:])
        arrays["materialized.labels"] = np.array(proximity.labels(), dtype=np.int64)
        arrays["materialized.cluster_ids"] = np.array(
            [shard.cluster_id for shard in shards], dtype=np.int64)
        arrays["materialized.member_offsets"] = member_offsets
        arrays["materialized.members"] = _concat(
            [shard.members for shard in shards], np.int64)
        arrays["materialized.row_offsets"] = row_offsets
        arrays["materialized.row_user_ids"] = _concat(
            [shard.user_ids for shard in shards], np.int64)
        arrays["materialized.row_values"] = _concat(
            [shard.values for shard in shards], np.float64)
        arrays["materialized.bounds"] = _concat(
            [shard.bound for shard in shards], np.float64)
        materialized_meta = {
            "measure": proximity.inner.name,
            "num_clusters": len(shards),
            "num_rows": proximity.num_rows(),
            "num_entries": proximity.num_entries(),
        }

    landmark_meta: Optional[Dict[str, object]] = None
    if landmarks is not None:
        landmark_ids, distances, hops = landmarks.sketch_arrays()
        arrays["landmark.ids"] = np.asarray(landmark_ids)
        arrays["landmark.distances"] = np.asarray(distances)
        arrays["landmark.hops"] = np.asarray(hops)
        landmark_meta = {
            "measure": landmarks.name,
            "num_landmarks": landmarks.num_landmarks,
            "strategy": landmarks.strategy,
            "seed": landmarks.seed,
            "decay": landmarks.config.decay,
        }

    meta: Dict[str, object] = {
        "format": "repro-arena",
        "format_version": ARENA_VERSION,
        "name": dataset.name,
        "num_users": dataset.num_users,
        "num_actions": dataset.num_actions,
        "tags": tags,
        "holdout_tags": holdout_table,
        "users": [user.to_dict() for user in dataset.users],
        "items": [item.to_dict() for item in dataset.items],
        "has_holdout": dataset.holdout is not None,
        "materialized": materialized_meta,
        "landmark": landmark_meta,
    }
    return write_arena(path, meta, arrays)


# --------------------------------------------------------------------- #
# Array-backed store views
# --------------------------------------------------------------------- #

class ArenaInvertedIndex(InvertedIndex):
    """Inverted index whose posting lists are views into the arena.

    Random-access ``frequency`` lookups are answered by binary search over
    the endorser index's ascending item arrays instead of the eager
    ``(tag, item) -> frequency`` dict the in-memory build materialises.
    """

    def __init__(self, endorsers: EndorserIndex) -> None:
        super().__init__()
        self._endorsers = endorsers

    def frequency(self, item_id: int, tag: str) -> int:
        bundle = self._endorsers.for_tag(tag)
        if bundle is None or len(bundle) == 0:
            return 0
        position = int(np.searchsorted(bundle.item_ids, item_id))
        if position >= len(bundle) or int(bundle.item_ids[position]) != item_id:
            return 0
        return int(bundle.frequencies[position])


class _SocialArrays:
    """Frozen per-tag user → items CSR arrays (one atomically swapped unit)."""

    __slots__ = ("tag_ids", "user_offsets", "user_ids", "segment_offsets",
                 "item_ids")

    def __init__(self, tag_ids: Dict[str, int], user_offsets: np.ndarray,
                 user_ids: np.ndarray, segment_offsets: np.ndarray,
                 item_ids: np.ndarray) -> None:
        self.tag_ids = tag_ids
        self.user_offsets = user_offsets
        self.user_ids = user_ids
        self.segment_offsets = segment_offsets
        self.item_ids = item_ids


class ArenaSocialIndex(SocialIndex):
    """Social index answering ``items_for`` from the arena's per-tag CSR.

    The cold paths (full profiles, entry iteration) materialise the dict
    form lazily on first use.  Live updates land in a small ``(user, tag) →
    items`` overlay consulted before the frozen arrays; :meth:`compact`
    folds the overlay back into fresh arrays.
    """

    def __init__(self, tags: Sequence[str], user_offsets: np.ndarray,
                 user_ids: np.ndarray, segment_offsets: np.ndarray,
                 item_ids: np.ndarray) -> None:
        super().__init__()
        self._base = _SocialArrays(
            {tag: index for index, tag in enumerate(tags)},
            user_offsets, user_ids, segment_offsets, item_ids)
        self._overlay: Dict[Tuple[int, str], Tuple[int, ...]] = {}
        self._overlay_extra = 0
        self._profiles_built = False

    def _base_items_for(self, base: _SocialArrays, user_id: int,
                        tag: str) -> Tuple[int, ...]:
        tag_index = base.tag_ids.get(tag)
        if tag_index is None:
            return ()
        start = int(base.user_offsets[tag_index])
        end = int(base.user_offsets[tag_index + 1])
        position = start + int(np.searchsorted(base.user_ids[start:end], user_id))
        if position >= end or int(base.user_ids[position]) != user_id:
            return ()
        row_start = int(base.segment_offsets[position])
        row_end = int(base.segment_offsets[position + 1])
        return tuple(int(i) for i in base.item_ids[row_start:row_end])

    def items_for(self, user_id: int, tag: str) -> Tuple[int, ...]:
        if self._overlay:
            merged = self._overlay.get((user_id, tag))
            if merged is not None:
                return merged
        return self._base_items_for(self._base, user_id, tag)

    # -- delta overlay -------------------------------------------------- #

    def apply_delta(self, added: Mapping[Tuple[int, str], Sequence[int]]
                    ) -> None:
        """Merge new ``(user, tag) -> [items]`` pairs into the overlay.

        The frozen arrays stay untouched; each touched entry's overlay
        tuple holds the *merged* item set, so a read needs no union pass.
        """
        for (user_id, tag), items in added.items():
            current = self.items_for(user_id, tag)
            merged = tuple(sorted(set(current) | set(items)))
            self._overlay_extra += len(merged) - len(current)
            self._overlay[(user_id, tag)] = merged
            if self._profiles_built:
                self._profiles.setdefault(user_id, {})[tag] = merged

    @property
    def overlay_size(self) -> int:
        """Number of ``(user, tag)`` entries pending compaction."""
        return len(self._overlay)

    def stage_compact(self) -> Optional[Tuple[_SocialArrays, int]]:
        """Build the next epoch's arrays without mutating anything.

        Returns ``None`` when the overlay is empty, else ``(arrays,
        folded)`` to hand to :meth:`commit_compact`.  Staging performs all
        the work that can fail (allocation, merging); the commit is then a
        pure attribute swap, which is what gives
        :meth:`~repro.storage.updates.DatasetUpdater.compact` its
        failure atomicity — an exception mid-compaction leaves the old
        epoch fully intact.
        """
        if not self._overlay:
            return None
        staging = self._merged_staging()
        tags = sorted({tag for profile in staging.values() for tag in profile})
        tag_ids = {tag: index for index, tag in enumerate(tags)}
        ordered_users = sorted(staging)
        user_offsets = np.zeros(len(tags) + 1, dtype=np.int64)
        users: List[int] = []
        lengths: List[int] = []
        items: List[int] = []
        for index, tag in enumerate(tags):
            with_tag = 0
            for user in ordered_users:
                row = staging[user].get(tag)
                if not row:
                    continue
                users.append(user)
                lengths.append(len(row))
                items.extend(row)
                with_tag += 1
            user_offsets[index + 1] = user_offsets[index] + with_tag
        segment_offsets = np.zeros(len(users) + 1, dtype=np.int64)
        np.cumsum(np.array(lengths, dtype=np.int64), out=segment_offsets[1:])
        arrays = _SocialArrays(
            tag_ids, user_offsets,
            np.array(users, dtype=np.int64), segment_offsets,
            np.array(items, dtype=np.int64))
        return arrays, len(self._overlay)

    def commit_compact(self, staged: Optional[Tuple[_SocialArrays, int]]
                       ) -> int:
        """Install staged arrays; pure attribute swaps that cannot raise.

        A merged read and a compacted read are value-identical, so the
        single-attribute swap of the frozen-array holder is safe against
        concurrent lock-free readers; the overlay is cleared only after the
        new arrays are in place (a reader seeing both gets the same items).
        Returns the number of overlay entries folded.
        """
        if staged is None:
            return 0
        arrays, folded = staged
        self._base = arrays
        self._overlay = {}
        self._overlay_extra = 0
        return folded

    def compact(self) -> int:
        """Fold the overlay into fresh arrays (stage + commit in one step)."""
        return self.commit_compact(self.stage_compact())

    # -- cold paths ----------------------------------------------------- #

    def _merged_staging(self) -> Dict[int, Dict[str, Tuple[int, ...]]]:
        base = self._base
        staging: Dict[int, Dict[str, Tuple[int, ...]]] = {}
        for tag, tag_index in base.tag_ids.items():
            start = int(base.user_offsets[tag_index])
            end = int(base.user_offsets[tag_index + 1])
            for position in range(start, end):
                user = int(base.user_ids[position])
                row_start = int(base.segment_offsets[position])
                row_end = int(base.segment_offsets[position + 1])
                staging.setdefault(user, {})[tag] = tuple(
                    int(i) for i in base.item_ids[row_start:row_end])
        for (user, tag), row in self._overlay.items():
            staging.setdefault(user, {})[tag] = row
        return staging

    def _ensure_profiles(self) -> None:
        if self._profiles_built:
            return
        self._profiles.update(self._merged_staging())
        self._profiles_built = True

    def __contains__(self, user_id: int) -> bool:
        self._ensure_profiles()
        return super().__contains__(user_id)

    def __len__(self) -> int:
        self._ensure_profiles()
        return super().__len__()

    def users(self) -> List[int]:
        self._ensure_profiles()
        return super().users()

    def profile(self, user_id: int) -> Dict[str, Tuple[int, ...]]:
        self._ensure_profiles()
        return super().profile(user_id)

    def tags_for(self, user_id: int) -> Tuple[str, ...]:
        self._ensure_profiles()
        return super().tags_for(user_id)

    def num_entries(self) -> int:
        return int(self._base.item_ids.shape[0]) + self._overlay_extra

    def iter_entries(self) -> Iterator[Tuple[int, str, int]]:
        self._ensure_profiles()
        return super().iter_entries()


class _TaggingState:
    """One frozen epoch of the arena tagging store (atomically swapped).

    ``bundles`` is a :meth:`EndorserIndex.snapshot` taken when the epoch was
    frozen: the live endorser index keeps absorbing deltas in place, so the
    store's *base* reads must come from this decoupled snapshot or a merged
    read would count the same delta twice.
    """

    __slots__ = ("tag_table", "users", "items", "tags", "timestamps",
                 "bundles")

    def __init__(self, tag_table: List[str], users: np.ndarray,
                 items: np.ndarray, tags: np.ndarray, timestamps: np.ndarray,
                 bundles: Dict[str, TagEndorsers]) -> None:
        self.tag_table = tag_table
        self.users = users
        self.items = items
        self.tags = tags
        self.timestamps = timestamps
        self.bundles = bundles

    def __len__(self) -> int:
        return int(self.users.shape[0])

    def segment(self, item_id: int, tag: str) -> np.ndarray:
        bundle = self.bundles.get(tag)
        if bundle is None:
            return _EMPTY_SEGMENT
        return bundle.taggers_of(item_id)


_EMPTY_SEGMENT = np.zeros(0, dtype=np.int64)


class ArenaTaggingStore(TaggingStore):
    """Tagging store whose hot lookups run over the arena arrays.

    ``taggers_sorted`` / ``tag_frequency`` / ``items_for_tag`` — the paths
    every query touches — are answered from the endorser CSR without
    building any Python dict.  Everything else (per-user profiles, holdout
    splitting, iteration) replays the stored actions into the regular
    in-memory store on first use.

    **Mutations** (live updates adding actions) land in a small in-memory
    :class:`TaggingStore` **delta**; reads merge the frozen arrays with the
    delta (the two sides are disjoint by deduplication, so counts add and
    sorted segments merge).  While the delta is empty every hot path is the
    pure zero-copy array read; :meth:`compact` folds the delta back into
    fresh frozen arrays.  The all-or-nothing handover of earlier revisions
    — first ``add`` replayed the whole log and retired the arrays — is
    gone: an update-heavy workload keeps its array-speed reads.

    Mutations, cold-path materialisation and delta-merged reads are
    serialised by one re-entrant lock; the delta-empty fast path is
    lock-free (it touches only the frozen state holder, which compaction
    swaps atomically).
    """

    def __init__(self, endorsers: EndorserIndex, tag_table: Sequence[str],
                 user_ids: np.ndarray, item_ids: np.ndarray,
                 tag_ids: np.ndarray, timestamps: np.ndarray) -> None:
        super().__init__()
        self._state = _TaggingState(list(tag_table), user_ids, item_ids,  # guarded-by: _lock
                                    tag_ids, timestamps, endorsers.snapshot())
        self._delta = TaggingStore()  # guarded-by: _lock
        self._delta_len = 0  # guarded-by: _lock
        self._materialised = False  # guarded-by: _lock
        self._lock = threading.RLock()

    # -- mutation: the delta overlay absorbs new actions ---------------- #

    def add(self, action: TaggingAction) -> bool:
        with self._lock:
            if self.contains(action.user_id, action.item_id, action.tag):
                return False
            self._delta.add(action)
            if self._materialised:
                # Keep the cold-path store in sync so materialised reads
                # (profiles, holdout splits) see the delta too.
                super().add(action)
            self._delta_len += 1
            return True

    @property
    def delta_size(self) -> int:
        """Number of delta actions pending compaction."""
        return self._delta_len

    def stage_compact(self, endorsers: EndorserIndex
                      ) -> Optional[Tuple[_TaggingState, int]]:
        """Build the next epoch's frozen state without mutating anything.

        ``endorsers`` must be the live endorser index *after* incremental
        maintenance folded the same delta into it (the normal state when
        every mutation goes through
        :class:`~repro.storage.updates.DatasetUpdater`); its snapshot
        becomes the next epoch's base.  Returns ``None`` when the delta is
        empty, else ``(state, folded)`` for :meth:`commit_compact`.  All
        validation and allocation happens here; an exception leaves the
        store byte-for-byte on its old epoch.  Stage and commit must run
        under the same writer lock (the updater's mutate lock) so no add
        lands between them.
        """
        with self._lock:
            if not self._delta_len:
                return None
            state = self._state
            if endorsers.num_entries() != len(state) + self._delta_len:
                raise StorageError(
                    "refusing to compact the arena tagging store: the "
                    "endorser index does not reflect the delta (mutations "
                    "must go through DatasetUpdater)")
            tag_table = list(state.tag_table)
            tag_ids = {tag: index for index, tag in enumerate(tag_table)}
            for tag in self._delta.tags():
                if tag not in tag_ids:
                    tag_ids[tag] = len(tag_table)
                    tag_table.append(tag)
            actions = self._delta.actions()
            staged = _TaggingState(
                tag_table,
                np.concatenate([state.users, np.array(
                    [a.user_id for a in actions], dtype=np.int64)]),
                np.concatenate([state.items, np.array(
                    [a.item_id for a in actions], dtype=np.int64)]),
                np.concatenate([state.tags, np.array(
                    [tag_ids[a.tag] for a in actions], dtype=np.int64)]),
                np.concatenate([state.timestamps, np.array(
                    [a.timestamp for a in actions], dtype=np.int64)]),
                endorsers.snapshot(),
            )
            return staged, self._delta_len

    def commit_compact(self, staged: Optional[Tuple[_TaggingState, int]]
                       ) -> int:
        """Install a staged epoch; pure attribute swaps that cannot raise.

        The swap is a single attribute store, so lock-free fast-path
        readers see either the old epoch (and a non-empty delta) or the
        new one — never a mix.  Returns the number of actions folded.
        """
        if staged is None:
            return 0
        state, folded = staged
        with self._lock:
            self._state = state
            self._delta_len = 0
            self._delta = TaggingStore()
            return folded

    def compact(self, endorsers: EndorserIndex) -> int:
        """Fold the delta into fresh arrays (stage + commit in one step)."""
        return self.commit_compact(self.stage_compact(endorsers))

    # -- array-served hot paths (delta-merged) -------------------------- #
    #
    # Read discipline: check ``_delta_len`` *before* capturing ``_state``.
    # A zero counter means any state captured afterwards already contains
    # every compacted delta; a non-zero counter routes through the lock,
    # where compaction cannot run concurrently.  (The 0 -> 1 transition of
    # an in-flight ``add`` simply linearises the read before the update.)

    def __len__(self) -> int:
        if not self._delta_len:
            return len(self._state)
        with self._lock:
            return len(self._state) + self._delta_len

    def num_distinct_triples(self) -> int:
        # The arena stores the deduplicated action log and the delta only
        # accepts unseen triples, so every row is a distinct triple.
        return len(self)

    def tags(self) -> List[str]:
        if not self._delta_len:
            # Compaction appends new tags to the id table; re-sort on read.
            return sorted(self._state.tag_table)
        with self._lock:
            return sorted(set(self._state.tag_table) | set(self._delta.tags()))

    def taggers_sorted(self, item_id: int, tag: str) -> Sequence[int]:
        if not self._delta_len:
            return self._state.segment(item_id, tag)
        with self._lock:
            return merge_sorted_disjoint(
                self._state.segment(item_id, tag),
                self._delta.taggers_sorted(item_id, tag))

    def taggers(self, item_id: int, tag: str) -> FrozenSet[int]:
        return frozenset(int(u) for u in self.taggers_sorted(item_id, tag))

    def tag_frequency(self, item_id: int, tag: str) -> int:
        if not self._delta_len:
            return int(self._state.segment(item_id, tag).shape[0])
        with self._lock:
            return int(self._state.segment(item_id, tag).shape[0]) \
                + self._delta.tag_frequency(item_id, tag)

    def _base_items_for_tag(self, tag: str) -> FrozenSet[int]:
        bundle = self._state.bundles.get(tag)
        if bundle is None:
            return frozenset()
        return frozenset(int(i) for i in bundle.item_ids)

    def items_for_tag(self, tag: str) -> FrozenSet[int]:
        if not self._delta_len:
            return self._base_items_for_tag(tag)
        with self._lock:
            return self._base_items_for_tag(tag) | self._delta.items_for_tag(tag)

    def contains(self, user_id: int, item_id: int, tag: str) -> bool:
        if self._delta_len:
            with self._lock:
                if self._delta.contains(user_id, item_id, tag):
                    return True
        segment = self._state.segment(item_id, tag)
        position = int(np.searchsorted(segment, user_id))
        return position < segment.shape[0] and int(segment[position]) == user_id

    def _base_popularity(self) -> Dict[str, int]:
        state = self._state
        counts = np.bincount(state.tags, minlength=len(state.tag_table))
        return {tag: int(counts[index])
                for index, tag in enumerate(state.tag_table)}

    def tag_popularity(self) -> Dict[str, int]:
        if not self._delta_len:
            return self._base_popularity()
        with self._lock:
            popularity = self._base_popularity()
            for tag, count in self._delta.tag_popularity().items():
                popularity[tag] = popularity.get(tag, 0) + count
            return popularity

    def action_histograms(self, num_users: int
                          ) -> Tuple[List[str], np.ndarray, np.ndarray]:
        """``(tag_table, activity, popularity)`` from the mapped arrays.

        ``np.bincount`` over the frozen action log plus a dict merge of the
        delta overlay: no per-user Python structures and no
        materialisation, so sampling a workload from a 100k-user arena
        stays array-speed.  Output follows the shared histogram contract
        (sorted tags, ``float64`` counts), so it is bit-identical to the
        in-memory store's answer for the same actions.
        """
        with self._lock:
            state = self._state
            activity = np.bincount(state.users,
                                   minlength=num_users).astype(np.float64)
            base_counts = np.bincount(state.tags,
                                      minlength=len(state.tag_table))
            counts: Dict[str, int] = {
                tag: int(base_counts[index])
                for index, tag in enumerate(state.tag_table)
            }
            if self._delta_len:
                for tag, count in self._delta.tag_popularity().items():
                    counts[tag] = counts.get(tag, 0) + count
                _, delta_activity, _ = self._delta.action_histograms(num_users)
                if delta_activity.shape[0] < activity.shape[0]:
                    delta_activity = np.concatenate([
                        delta_activity,
                        np.zeros(activity.shape[0] - delta_activity.shape[0],
                                 dtype=np.float64),
                    ])
                activity = activity + delta_activity
        tag_table = sorted(counts)
        popularity = np.array([float(counts[tag]) for tag in tag_table],
                              dtype=np.float64)
        return tag_table, activity, popularity

    # -- cold paths: replay into the in-memory store -------------------- #

    def _materialise(self) -> None:  # lock-held: _lock
        if self._materialised:
            return
        state = self._state
        for position in range(len(state)):
            # super().add keeps the secondary hash indexes consistent and
            # re-interns the tag strings.
            super().add(TaggingAction(
                user_id=int(state.users[position]),
                item_id=int(state.items[position]),
                tag=state.tag_table[int(state.tags[position])],
                timestamp=int(state.timestamps[position]),
            ))
        for action in self._delta.actions():
            super().add(action)
        self._materialised = True

    def actions(self) -> List[TaggingAction]:
        with self._lock:
            self._materialise()
            return super().actions()

    def __iter__(self) -> Iterator[TaggingAction]:
        with self._lock:
            self._materialise()
            return super().__iter__()

    def items_for_user_tag(self, user_id: int, tag: str) -> FrozenSet[int]:
        with self._lock:
            self._materialise()
            return super().items_for_user_tag(user_id, tag)

    def items_for_user(self, user_id: int) -> FrozenSet[int]:
        with self._lock:
            self._materialise()
            return super().items_for_user(user_id)

    def tags_for_user(self, user_id: int) -> Dict[str, int]:
        with self._lock:
            self._materialise()
            return super().tags_for_user(user_id)

    def users(self) -> List[int]:
        with self._lock:
            self._materialise()
            return super().users()

    def items(self) -> List[int]:
        with self._lock:
            self._materialise()
            return super().items()

    def activity(self, user_id: int) -> int:
        with self._lock:
            self._materialise()
            return super().activity(user_id)

    def filter(self, predicate) -> TaggingStore:
        with self._lock:
            self._materialise()
            return super().filter(predicate)

    def split_holdout(self, fraction: float, seed: int = 0
                      ) -> Tuple[TaggingStore, TaggingStore]:
        with self._lock:
            self._materialise()
            return super().split_holdout(fraction, seed=seed)


# --------------------------------------------------------------------- #
# Loading a dataset back
# --------------------------------------------------------------------- #

def _load_endorser_index(arena: Arena, tags: Sequence[str]) -> EndorserIndex:
    item_offsets = arena.array("endorser.item_offsets")
    item_ids = arena.array("endorser.item_ids")
    frequencies = arena.array("endorser.frequencies")
    segment_offsets = arena.array("endorser.segment_offsets")
    taggers = arena.array("endorser.taggers")
    index = EndorserIndex()
    for position, tag in enumerate(tags):
        start = int(item_offsets[position])
        end = int(item_offsets[position + 1])
        if start == end:
            continue
        base = int(segment_offsets[start])
        local_offsets = np.asarray(segment_offsets[start:end + 1]) - base
        index._tags[tag] = TagEndorsers(
            tag=tag,
            item_ids=item_ids[start:end],
            frequencies=frequencies[start:end],
            offsets=local_offsets,
            taggers=taggers[base:int(segment_offsets[end])],
        )
    return index


def _load_inverted_index(arena: Arena, tags: Sequence[str],
                         endorsers: EndorserIndex) -> ArenaInvertedIndex:
    offsets = arena.array("inverted.offsets")
    item_ids = arena.array("inverted.item_ids")
    frequencies = arena.array("inverted.frequencies")
    index = ArenaInvertedIndex(endorsers)
    for position, tag in enumerate(tags):
        start = int(offsets[position])
        end = int(offsets[position + 1])
        postings = PostingList(item_ids[start:end], frequencies[start:end])
        index._lists[tag] = postings
        index._max_frequency[tag] = int(frequencies[start]) if end > start else 0
    return index


def _load_holdout(arena: Arena) -> Optional[TaggingStore]:
    if not arena.meta.get("has_holdout"):
        return None
    table = arena.meta.get("holdout_tags") or arena.meta["tags"]
    store = TaggingStore()
    user_ids = arena.array("holdout.user_ids")
    item_ids = arena.array("holdout.item_ids")
    tag_ids = arena.array("holdout.tag_ids")
    timestamps = arena.array("holdout.timestamps")
    for position in range(int(user_ids.shape[0])):
        store.add(TaggingAction(
            user_id=int(user_ids[position]),
            item_id=int(item_ids[position]),
            tag=str(table[int(tag_ids[position])]),
            timestamp=int(timestamps[position]),
        ))
    return store


def load_dataset_from_arena(source: Union[PathLike, Arena]) -> Dataset:
    """Reassemble a query-ready :class:`Dataset` from an arena (zero-copy)."""
    arena = source if isinstance(source, Arena) else Arena.open(source)
    meta = arena.meta
    tags = [str(tag) for tag in meta["tags"]]

    graph = SocialGraph(
        int(meta["num_users"]),
        arena.array("graph.offsets"),
        arena.array("graph.neighbours"),
        arena.array("graph.weights"),
    )
    endorsers = _load_endorser_index(arena, tags)
    inverted = _load_inverted_index(arena, tags, endorsers)
    social = ArenaSocialIndex(
        tags,
        arena.array("social.user_offsets"),
        arena.array("social.user_ids"),
        arena.array("social.segment_offsets"),
        arena.array("social.item_ids"),
    )
    tagging = ArenaTaggingStore(
        endorsers, tags,
        arena.array("actions.user_ids"),
        arena.array("actions.item_ids"),
        arena.array("actions.tag_ids"),
        arena.array("actions.timestamps"),
    )
    users = UserStore()
    users.add_many(User.from_dict(record) for record in meta.get("users", []))
    items = ItemStore()
    items.add_many(Item.from_dict(record) for record in meta.get("items", []))
    return Dataset(
        name=str(meta.get("name", "arena")),
        graph=graph,
        users=users,
        items=items,
        tagging=tagging,
        inverted_index=inverted,
        social_index=social,
        endorser_index=endorsers,
        holdout=_load_holdout(arena),
    )


def load_shards(source: Union[PathLike, Arena]
                ) -> Optional[Tuple[List[int], List[ProximityShard]]]:
    """The arena's materialized proximity shards, or ``None`` when absent."""
    arena = source if isinstance(source, Arena) else Arena.open(source)
    if "materialized.labels" not in arena:
        return None
    labels = [int(label) for label in arena.array("materialized.labels")]
    cluster_ids = arena.array("materialized.cluster_ids")
    member_offsets = arena.array("materialized.member_offsets")
    members = arena.array("materialized.members")
    row_offsets = arena.array("materialized.row_offsets")
    row_user_ids = arena.array("materialized.row_user_ids")
    row_values = arena.array("materialized.row_values")
    bounds = arena.array("materialized.bounds")
    num_users = int(arena.meta["num_users"])
    shards: List[ProximityShard] = []
    for position in range(int(cluster_ids.shape[0])):
        first = int(member_offsets[position])
        last = int(member_offsets[position + 1])
        base = int(row_offsets[first])
        local_offsets = np.asarray(row_offsets[first:last + 1]) - base
        shards.append(ProximityShard(
            cluster_id=int(cluster_ids[position]),
            members=members[first:last],
            offsets=local_offsets,
            user_ids=row_user_ids[base:int(row_offsets[last])],
            values=row_values[base:int(row_offsets[last])],
            bound=bounds[position * num_users:(position + 1) * num_users],
        ))
    return labels, shards


def attach_shards(proximity: MaterializedProximity,
                  source: Union[PathLike, Arena]) -> bool:
    """Install the arena's shards into ``proximity``; returns success.

    Returns ``False`` when the arena carries no shards.  Raises
    :class:`PersistenceError` when it carries shards of a *different*
    measure than the one ``proximity`` wraps — mixing, say, PPR rows with
    shortest-path lazy refinement would silently serve two proximity
    semantics side by side.
    """
    arena = source if isinstance(source, Arena) else Arena.open(source)
    loaded = load_shards(arena)
    if loaded is None:
        return False
    recorded = (arena.meta.get("materialized") or {}).get("measure")
    if recorded is not None and recorded != proximity.inner.name:
        raise PersistenceError(
            f"arena {arena.path} materialized measure {recorded!r} does not "
            f"match the engine's measure {proximity.inner.name!r}")
    labels, shards = loaded
    proximity.install_shards(shards, labels=labels)
    return True


def load_landmarks(source: Union[PathLike, Arena]
                   ) -> Optional[Tuple[np.ndarray, np.ndarray, np.ndarray,
                                       Dict[str, object]]]:
    """The arena's landmark sketch, or ``None`` when absent.

    Returns ``(landmark_ids, distances, hops, meta)`` with the arrays
    memory-mapped straight out of the arena (read-only views).
    """
    arena = source if isinstance(source, Arena) else Arena.open(source)
    if "landmark.ids" not in arena:
        return None
    meta = dict(arena.meta.get("landmark") or {})
    return (arena.array("landmark.ids"),
            arena.array("landmark.distances"),
            arena.array("landmark.hops"),
            meta)


def attach_landmarks(proximity: LandmarkProximity,
                     source: Union[PathLike, Arena]) -> bool:
    """Install the arena's landmark sketch into ``proximity``; returns success.

    Returns ``False`` when the arena carries no sketch.  Raises
    :class:`PersistenceError` when the recorded decay differs from the
    measure's — the hop penalty is baked into the persisted estimates, so
    a mismatched sketch would silently serve a different proximity scale.
    """
    arena = source if isinstance(source, Arena) else Arena.open(source)
    loaded = load_landmarks(arena)
    if loaded is None:
        return False
    landmark_ids, distances, hops, meta = loaded
    recorded = meta.get("decay")
    if recorded is not None and float(recorded) != proximity.config.decay:
        raise PersistenceError(
            f"arena {arena.path} landmark sketch was built with "
            f"decay={recorded} but the engine uses "
            f"decay={proximity.config.decay}")
    proximity.install_sketch(landmark_ids, distances, hops)
    return True


# Re-exported niceties ------------------------------------------------- #

__all__ = [
    "Arena",
    "ArenaInvertedIndex",
    "ArenaSocialIndex",
    "ArenaTaggingStore",
    "attach_landmarks",
    "attach_shards",
    "build_arena",
    "load_dataset_from_arena",
    "load_landmarks",
    "load_shards",
    "write_arena",
]
