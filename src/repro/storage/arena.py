"""Memory-mapped index arena: every hot structure in one on-disk file.

Loading a snapshot through :mod:`repro.storage.persistence` replays JSON
lines into Python stores and *rebuilds* every derived index — sorting
posting lists, grouping endorser segments — which makes process cold start
scale with corpus size.  The arena removes that rebuild entirely: all the
array-backed hot structures are serialised **in their query-ready layout**
into a single versioned file and opened with ``np.memmap``, so a process
serves its first query after little more than an ``open`` + header parse:

* the social graph's CSR arrays (used as-is by :class:`SocialGraph`);
* the inverted index's frequency-ordered posting-list arrays;
* the endorser index's per-tag item → tagger CSR;
* the social index's per-tag user → item CSR;
* the raw tagging actions (tag names interned through a small tag table);
* optionally, the :class:`~repro.proximity.materialized.MaterializedProximity`
  shards — per-cluster proximity rows plus bound vectors.

File layout (little-endian)::

    magic "RPRARENA" | uint32 version | uint64 header_length
    header JSON  (meta + array manifest: name, dtype, shape, offset)
    64-byte-aligned raw array payloads

The scalar-path structures that are *not* arrays (the tagging store's hash
indexes, user/item profiles) are served by thin array-backed subclasses
that answer the hot lookups by binary search over the mapped arrays and
fall back to materialising the full Python store only when a cold path
(workload generation, holdout splitting) actually asks for it.
"""

from __future__ import annotations

import json
import struct
from pathlib import Path
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import PersistenceError
from ..graph import SocialGraph
from ..proximity.materialized import MaterializedProximity, ProximityShard
from .dataset import Dataset
from .endorser_index import EndorserIndex, TagEndorsers
from .inverted_index import InvertedIndex, PostingList
from .items import Item, ItemStore
from .social_index import SocialIndex
from .tagging import TaggingAction, TaggingStore
from .users import User, UserStore

PathLike = Union[str, Path]

MAGIC = b"RPRARENA"
ARENA_VERSION = 1
_ALIGNMENT = 64
_PREAMBLE = struct.Struct("<8sIQ")


def _align(offset: int) -> int:
    return (offset + _ALIGNMENT - 1) // _ALIGNMENT * _ALIGNMENT


# --------------------------------------------------------------------- #
# Low-level format
# --------------------------------------------------------------------- #

def write_arena(path: PathLike, meta: Dict[str, object],
                arrays: Dict[str, np.ndarray]) -> Path:
    """Write ``meta`` + named arrays in the arena format; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    manifest: List[Dict[str, object]] = []
    ordered: List[Tuple[str, np.ndarray]] = []
    for name, array in arrays.items():
        array = np.ascontiguousarray(array)
        ordered.append((name, array))
        manifest.append({
            "name": name,
            "dtype": array.dtype.str,
            "shape": list(array.shape),
        })
    header: Dict[str, object] = {"meta": meta, "arrays": manifest}
    # Two-pass offset computation: the header length depends on the offsets
    # only through their decimal width, so size the header once without
    # them and reserve generous room (32 bytes per offset entry).
    encoded = json.dumps(header, sort_keys=True).encode("utf-8")
    data_start = _align(_PREAMBLE.size + len(encoded) + 32 * len(manifest) + 64)
    offset = data_start
    for entry, (_name, array) in zip(manifest, ordered):
        entry["offset"] = offset
        offset = _align(offset + array.nbytes)
    encoded = json.dumps(header, sort_keys=True).encode("utf-8")
    if _PREAMBLE.size + len(encoded) > data_start:
        raise PersistenceError("arena header overflowed its reserved space")
    with path.open("wb") as handle:
        handle.write(_PREAMBLE.pack(MAGIC, ARENA_VERSION, len(encoded)))
        handle.write(encoded)
        for entry, (_name, array) in zip(manifest, ordered):
            handle.seek(int(entry["offset"]))
            handle.write(array.tobytes())
        # Pad the file to the last aligned boundary so every mapped view is
        # in bounds.
        handle.seek(0, 2)
        if handle.tell() < offset:
            handle.truncate(offset)
    return path


class Arena:
    """An opened arena: parsed meta plus zero-copy array views.

    The backing buffer is an ``np.memmap`` in read-only mode; every array in
    :attr:`arrays` is a typed view into it.  Views must not be mutated.
    """

    def __init__(self, path: Path, meta: Dict[str, object],
                 arrays: Dict[str, np.ndarray], buffer: np.memmap) -> None:
        self.path = path
        self.meta = meta
        self.arrays = arrays
        self._buffer = buffer

    def __contains__(self, name: str) -> bool:
        return name in self.arrays

    def array(self, name: str) -> np.ndarray:
        """The named array view (raises for unknown names)."""
        try:
            return self.arrays[name]
        except KeyError:
            raise PersistenceError(f"arena {self.path} has no array {name!r}") from None

    @classmethod
    def open(cls, path: PathLike) -> "Arena":
        """Map an arena file; raises :class:`PersistenceError` on mismatch."""
        path = Path(path)
        try:
            with path.open("rb") as handle:
                preamble = handle.read(_PREAMBLE.size)
                if len(preamble) < _PREAMBLE.size:
                    raise PersistenceError(f"{path}: truncated arena preamble")
                magic, version, header_length = _PREAMBLE.unpack(preamble)
                if magic != MAGIC:
                    raise PersistenceError(f"{path}: not an arena file (bad magic)")
                if version != ARENA_VERSION:
                    raise PersistenceError(
                        f"{path}: unsupported arena version {version} "
                        f"(expected {ARENA_VERSION})")
                header = json.loads(handle.read(header_length).decode("utf-8"))
        except OSError as exc:
            raise PersistenceError(f"failed to read arena {path}: {exc}") from exc
        buffer = np.memmap(path, dtype=np.uint8, mode="r")
        arrays: Dict[str, np.ndarray] = {}
        for entry in header["arrays"]:
            dtype = np.dtype(str(entry["dtype"]))
            shape = tuple(int(dim) for dim in entry["shape"])
            count = int(np.prod(shape)) if shape else 1
            start = int(entry["offset"])
            end = start + count * dtype.itemsize
            if end > buffer.shape[0]:
                raise PersistenceError(
                    f"{path}: array {entry['name']!r} overruns the file")
            arrays[str(entry["name"])] = \
                buffer[start:end].view(dtype).reshape(shape)
        return cls(path, dict(header["meta"]), arrays, buffer)


# --------------------------------------------------------------------- #
# Building an arena from a dataset
# --------------------------------------------------------------------- #

def _concat(parts: Sequence[np.ndarray], dtype) -> np.ndarray:
    if not parts:
        return np.zeros(0, dtype=dtype)
    return np.concatenate([np.asarray(part, dtype=dtype) for part in parts]) \
        if len(parts) > 1 else np.asarray(parts[0], dtype=dtype)


def _action_arrays(store: TaggingStore, tag_ids: Dict[str, int]
                   ) -> Dict[str, np.ndarray]:
    actions = store.actions()
    return {
        "user_ids": np.array([a.user_id for a in actions], dtype=np.int64),
        "item_ids": np.array([a.item_id for a in actions], dtype=np.int64),
        "tag_ids": np.array([tag_ids[a.tag] for a in actions], dtype=np.int64),
        "timestamps": np.array([a.timestamp for a in actions], dtype=np.int64),
    }


def build_arena(dataset: Dataset, path: PathLike,
                proximity: Optional[MaterializedProximity] = None) -> Path:
    """Serialise ``dataset`` (and optional built shards) into an arena file."""
    tags = dataset.tagging.tags()
    tag_ids = {tag: index for index, tag in enumerate(tags)}
    arrays: Dict[str, np.ndarray] = {}

    offsets, neighbours, weights = dataset.graph.csr_arrays()
    arrays["graph.offsets"] = offsets
    arrays["graph.neighbours"] = neighbours
    arrays["graph.weights"] = weights

    # Inverted index: frequency-ordered posting lists, concatenated in tag
    # order with a per-tag offsets array.
    inv_offsets = np.zeros(len(tags) + 1, dtype=np.int64)
    inv_items: List[np.ndarray] = []
    inv_freqs: List[np.ndarray] = []
    for index, tag in enumerate(tags):
        postings = dataset.inverted_index.arrays(tag)
        inv_items.append(postings.item_ids)
        inv_freqs.append(postings.frequencies)
        inv_offsets[index + 1] = inv_offsets[index] + len(postings)
    arrays["inverted.offsets"] = inv_offsets
    arrays["inverted.item_ids"] = _concat(inv_items, np.int64)
    arrays["inverted.frequencies"] = _concat(inv_freqs, np.int64)

    # Endorser index: per-tag item -> tagger CSR, flattened with a global
    # per-(tag, item) segment-offsets array.
    end_item_offsets = np.zeros(len(tags) + 1, dtype=np.int64)
    end_items: List[np.ndarray] = []
    end_freqs: List[np.ndarray] = []
    end_taggers: List[np.ndarray] = []
    segment_lengths: List[np.ndarray] = []
    for index, tag in enumerate(tags):
        bundle = dataset.endorser_index.for_tag(tag)
        if bundle is None:
            end_item_offsets[index + 1] = end_item_offsets[index]
            continue
        end_items.append(bundle.item_ids)
        end_freqs.append(bundle.frequencies)
        end_taggers.append(bundle.taggers)
        segment_lengths.append(np.diff(bundle.offsets))
        end_item_offsets[index + 1] = end_item_offsets[index] + len(bundle)
    lengths = _concat(segment_lengths, np.int64)
    segment_offsets = np.zeros(lengths.shape[0] + 1, dtype=np.int64)
    np.cumsum(lengths, out=segment_offsets[1:])
    arrays["endorser.item_offsets"] = end_item_offsets
    arrays["endorser.item_ids"] = _concat(end_items, np.int64)
    arrays["endorser.frequencies"] = _concat(end_freqs, np.int64)
    arrays["endorser.segment_offsets"] = segment_offsets
    arrays["endorser.taggers"] = _concat(end_taggers, np.int64)

    # Social index: per-tag user -> item CSR (the frontier expansion path).
    soc_user_offsets = np.zeros(len(tags) + 1, dtype=np.int64)
    soc_users: List[int] = []
    soc_lengths: List[int] = []
    soc_items: List[int] = []
    all_users = dataset.social_index.users()
    for index, tag in enumerate(tags):
        with_tag = 0
        for user in all_users:  # ascending, so each tag segment is sorted
            items = dataset.social_index.items_for(user, tag)
            if not items:
                continue
            soc_users.append(user)
            soc_lengths.append(len(items))
            soc_items.extend(items)
            with_tag += 1
        soc_user_offsets[index + 1] = soc_user_offsets[index] + with_tag
    soc_segment_offsets = np.zeros(len(soc_users) + 1, dtype=np.int64)
    np.cumsum(np.array(soc_lengths, dtype=np.int64), out=soc_segment_offsets[1:])
    arrays["social.user_offsets"] = soc_user_offsets
    arrays["social.user_ids"] = np.array(soc_users, dtype=np.int64)
    arrays["social.segment_offsets"] = soc_segment_offsets
    arrays["social.item_ids"] = np.array(soc_items, dtype=np.int64)

    for name, array in _action_arrays(dataset.tagging, tag_ids).items():
        arrays[f"actions.{name}"] = array
    if dataset.holdout is not None:
        holdout_tags = sorted(set(tag_ids) | set(dataset.holdout.tags()))
        holdout_ids = {tag: index for index, tag in enumerate(holdout_tags)}
        for name, array in _action_arrays(dataset.holdout, holdout_ids).items():
            arrays[f"holdout.{name}"] = array
        holdout_table: Optional[List[str]] = holdout_tags
    else:
        holdout_table = None

    materialized_meta: Optional[Dict[str, object]] = None
    if proximity is not None and proximity.built:
        shards = sorted(proximity.shards(), key=lambda shard: shard.cluster_id)
        member_offsets = np.zeros(len(shards) + 1, dtype=np.int64)
        row_lengths: List[np.ndarray] = []
        for index, shard in enumerate(shards):
            member_offsets[index + 1] = member_offsets[index] + len(shard)
            row_lengths.append(np.diff(shard.offsets))
        flat_lengths = _concat(row_lengths, np.int64)
        row_offsets = np.zeros(flat_lengths.shape[0] + 1, dtype=np.int64)
        np.cumsum(flat_lengths, out=row_offsets[1:])
        arrays["materialized.labels"] = np.array(proximity.labels(), dtype=np.int64)
        arrays["materialized.cluster_ids"] = np.array(
            [shard.cluster_id for shard in shards], dtype=np.int64)
        arrays["materialized.member_offsets"] = member_offsets
        arrays["materialized.members"] = _concat(
            [shard.members for shard in shards], np.int64)
        arrays["materialized.row_offsets"] = row_offsets
        arrays["materialized.row_user_ids"] = _concat(
            [shard.user_ids for shard in shards], np.int64)
        arrays["materialized.row_values"] = _concat(
            [shard.values for shard in shards], np.float64)
        arrays["materialized.bounds"] = _concat(
            [shard.bound for shard in shards], np.float64)
        materialized_meta = {
            "measure": proximity.inner.name,
            "num_clusters": len(shards),
            "num_rows": proximity.num_rows(),
            "num_entries": proximity.num_entries(),
        }

    meta: Dict[str, object] = {
        "format": "repro-arena",
        "format_version": ARENA_VERSION,
        "name": dataset.name,
        "num_users": dataset.num_users,
        "num_actions": dataset.num_actions,
        "tags": tags,
        "holdout_tags": holdout_table,
        "users": [user.to_dict() for user in dataset.users],
        "items": [item.to_dict() for item in dataset.items],
        "has_holdout": dataset.holdout is not None,
        "materialized": materialized_meta,
    }
    return write_arena(path, meta, arrays)


# --------------------------------------------------------------------- #
# Array-backed store views
# --------------------------------------------------------------------- #

class ArenaInvertedIndex(InvertedIndex):
    """Inverted index whose posting lists are views into the arena.

    Random-access ``frequency`` lookups are answered by binary search over
    the endorser index's ascending item arrays instead of the eager
    ``(tag, item) -> frequency`` dict the in-memory build materialises.
    """

    def __init__(self, endorsers: EndorserIndex) -> None:
        super().__init__()
        self._endorsers = endorsers

    def frequency(self, item_id: int, tag: str) -> int:
        bundle = self._endorsers.for_tag(tag)
        if bundle is None or len(bundle) == 0:
            return 0
        position = int(np.searchsorted(bundle.item_ids, item_id))
        if position >= len(bundle) or int(bundle.item_ids[position]) != item_id:
            return 0
        return int(bundle.frequencies[position])


class ArenaSocialIndex(SocialIndex):
    """Social index answering ``items_for`` from the arena's per-tag CSR.

    The cold paths (full profiles, entry iteration) materialise the dict
    form lazily on first use.
    """

    def __init__(self, tags: Sequence[str], user_offsets: np.ndarray,
                 user_ids: np.ndarray, segment_offsets: np.ndarray,
                 item_ids: np.ndarray) -> None:
        super().__init__()
        self._tag_ids = {tag: index for index, tag in enumerate(tags)}
        self._user_offsets = user_offsets
        self._user_ids = user_ids
        self._segment_offsets = segment_offsets
        self._item_ids = item_ids
        self._profiles_built = False

    def items_for(self, user_id: int, tag: str) -> Tuple[int, ...]:
        tag_index = self._tag_ids.get(tag)
        if tag_index is None:
            return ()
        start = int(self._user_offsets[tag_index])
        end = int(self._user_offsets[tag_index + 1])
        position = start + int(np.searchsorted(self._user_ids[start:end], user_id))
        if position >= end or int(self._user_ids[position]) != user_id:
            return ()
        row_start = int(self._segment_offsets[position])
        row_end = int(self._segment_offsets[position + 1])
        return tuple(int(i) for i in self._item_ids[row_start:row_end])

    def _ensure_profiles(self) -> None:
        if self._profiles_built:
            return
        staging: Dict[int, Dict[str, Tuple[int, ...]]] = {}
        for tag, tag_index in self._tag_ids.items():
            start = int(self._user_offsets[tag_index])
            end = int(self._user_offsets[tag_index + 1])
            for position in range(start, end):
                user = int(self._user_ids[position])
                row_start = int(self._segment_offsets[position])
                row_end = int(self._segment_offsets[position + 1])
                staging.setdefault(user, {})[tag] = tuple(
                    int(i) for i in self._item_ids[row_start:row_end])
        self._profiles.update(staging)
        self._profiles_built = True

    def __contains__(self, user_id: int) -> bool:
        self._ensure_profiles()
        return super().__contains__(user_id)

    def __len__(self) -> int:
        self._ensure_profiles()
        return super().__len__()

    def users(self) -> List[int]:
        self._ensure_profiles()
        return super().users()

    def profile(self, user_id: int) -> Dict[str, Tuple[int, ...]]:
        self._ensure_profiles()
        return super().profile(user_id)

    def tags_for(self, user_id: int) -> Tuple[str, ...]:
        self._ensure_profiles()
        return super().tags_for(user_id)

    def num_entries(self) -> int:
        return int(self._item_ids.shape[0])

    def iter_entries(self) -> Iterator[Tuple[int, str, int]]:
        self._ensure_profiles()
        return super().iter_entries()


class ArenaTaggingStore(TaggingStore):
    """Tagging store whose hot lookups run over the arena arrays.

    ``taggers_sorted`` / ``tag_frequency`` / ``items_for_tag`` — the paths
    every query touches — are answered from the endorser CSR without
    building any Python dict.  Everything else (per-user profiles, holdout
    splitting, iteration) replays the stored actions into the regular
    in-memory store on first use.

    The first **mutation** (a live update adding actions) replays the log
    and permanently switches every lookup to the in-memory store: the
    mapped arrays describe the pre-update corpus and must not answer reads
    once the store has diverged from them.
    """

    def __init__(self, endorsers: EndorserIndex, tag_table: Sequence[str],
                 user_ids: np.ndarray, item_ids: np.ndarray,
                 tag_ids: np.ndarray, timestamps: np.ndarray) -> None:
        super().__init__()
        self._endorsers = endorsers
        self._tag_table = list(tag_table)
        self._array_users = user_ids
        self._array_items = item_ids
        self._array_tags = tag_ids
        self._array_timestamps = timestamps
        self._materialised = False
        self._mutated = False

    # -- mutation: arrays go stale, the in-memory store takes over ------ #

    def add(self, action: TaggingAction) -> bool:
        if not self._mutated:
            self._materialise()
            self._mutated = True
        return super().add(action)

    # -- array-served hot paths ---------------------------------------- #

    def __len__(self) -> int:
        if self._mutated:
            return super().__len__()
        return int(self._array_users.shape[0])

    def num_distinct_triples(self) -> int:
        if self._mutated:
            return super().num_distinct_triples()
        # The arena stores the deduplicated action log, so every row is a
        # distinct triple.
        return len(self)

    def tags(self) -> List[str]:
        if self._mutated:
            return super().tags()
        return list(self._tag_table)

    def _segment(self, item_id: int, tag: str) -> np.ndarray:
        bundle = self._endorsers.for_tag(tag)
        if bundle is None:
            return np.zeros(0, dtype=np.int64)
        return bundle.taggers_of(item_id)

    def taggers_sorted(self, item_id: int, tag: str) -> Sequence[int]:
        if self._mutated:
            return super().taggers_sorted(item_id, tag)
        return self._segment(item_id, tag)

    def taggers(self, item_id: int, tag: str) -> FrozenSet[int]:
        if self._mutated:
            return super().taggers(item_id, tag)
        return frozenset(int(u) for u in self._segment(item_id, tag))

    def tag_frequency(self, item_id: int, tag: str) -> int:
        if self._mutated:
            return super().tag_frequency(item_id, tag)
        return int(self._segment(item_id, tag).shape[0])

    def items_for_tag(self, tag: str) -> FrozenSet[int]:
        if self._mutated:
            return super().items_for_tag(tag)
        bundle = self._endorsers.for_tag(tag)
        if bundle is None:
            return frozenset()
        return frozenset(int(i) for i in bundle.item_ids)

    def contains(self, user_id: int, item_id: int, tag: str) -> bool:
        if self._mutated:
            return super().contains(user_id, item_id, tag)
        segment = self._segment(item_id, tag)
        position = int(np.searchsorted(segment, user_id))
        return position < segment.shape[0] and int(segment[position]) == user_id

    def tag_popularity(self) -> Dict[str, int]:
        if self._mutated:
            return super().tag_popularity()
        counts = np.bincount(self._array_tags, minlength=len(self._tag_table))
        return {tag: int(counts[index])
                for index, tag in enumerate(self._tag_table)}

    # -- cold paths: replay into the in-memory store -------------------- #

    def _materialise(self) -> None:
        if self._materialised:
            return
        self._materialised = True
        for position in range(len(self)):
            # super().add keeps the secondary hash indexes consistent and
            # re-interns the tag strings.
            super().add(TaggingAction(
                user_id=int(self._array_users[position]),
                item_id=int(self._array_items[position]),
                tag=self._tag_table[int(self._array_tags[position])],
                timestamp=int(self._array_timestamps[position]),
            ))

    def actions(self) -> List[TaggingAction]:
        self._materialise()
        return super().actions()

    def __iter__(self) -> Iterator[TaggingAction]:
        self._materialise()
        return super().__iter__()

    def items_for_user_tag(self, user_id: int, tag: str) -> FrozenSet[int]:
        self._materialise()
        return super().items_for_user_tag(user_id, tag)

    def items_for_user(self, user_id: int) -> FrozenSet[int]:
        self._materialise()
        return super().items_for_user(user_id)

    def tags_for_user(self, user_id: int) -> Dict[str, int]:
        self._materialise()
        return super().tags_for_user(user_id)

    def users(self) -> List[int]:
        self._materialise()
        return super().users()

    def items(self) -> List[int]:
        self._materialise()
        return super().items()

    def activity(self, user_id: int) -> int:
        self._materialise()
        return super().activity(user_id)

    def filter(self, predicate) -> TaggingStore:
        self._materialise()
        return super().filter(predicate)

    def split_holdout(self, fraction: float, seed: int = 0
                      ) -> Tuple[TaggingStore, TaggingStore]:
        self._materialise()
        return super().split_holdout(fraction, seed=seed)


# --------------------------------------------------------------------- #
# Loading a dataset back
# --------------------------------------------------------------------- #

def _load_endorser_index(arena: Arena, tags: Sequence[str]) -> EndorserIndex:
    item_offsets = arena.array("endorser.item_offsets")
    item_ids = arena.array("endorser.item_ids")
    frequencies = arena.array("endorser.frequencies")
    segment_offsets = arena.array("endorser.segment_offsets")
    taggers = arena.array("endorser.taggers")
    index = EndorserIndex()
    for position, tag in enumerate(tags):
        start = int(item_offsets[position])
        end = int(item_offsets[position + 1])
        if start == end:
            continue
        base = int(segment_offsets[start])
        local_offsets = np.asarray(segment_offsets[start:end + 1]) - base
        index._tags[tag] = TagEndorsers(
            tag=tag,
            item_ids=item_ids[start:end],
            frequencies=frequencies[start:end],
            offsets=local_offsets,
            taggers=taggers[base:int(segment_offsets[end])],
        )
    return index


def _load_inverted_index(arena: Arena, tags: Sequence[str],
                         endorsers: EndorserIndex) -> ArenaInvertedIndex:
    offsets = arena.array("inverted.offsets")
    item_ids = arena.array("inverted.item_ids")
    frequencies = arena.array("inverted.frequencies")
    index = ArenaInvertedIndex(endorsers)
    for position, tag in enumerate(tags):
        start = int(offsets[position])
        end = int(offsets[position + 1])
        postings = PostingList(item_ids[start:end], frequencies[start:end])
        index._lists[tag] = postings
        index._max_frequency[tag] = int(frequencies[start]) if end > start else 0
    return index


def _load_holdout(arena: Arena) -> Optional[TaggingStore]:
    if not arena.meta.get("has_holdout"):
        return None
    table = arena.meta.get("holdout_tags") or arena.meta["tags"]
    store = TaggingStore()
    user_ids = arena.array("holdout.user_ids")
    item_ids = arena.array("holdout.item_ids")
    tag_ids = arena.array("holdout.tag_ids")
    timestamps = arena.array("holdout.timestamps")
    for position in range(int(user_ids.shape[0])):
        store.add(TaggingAction(
            user_id=int(user_ids[position]),
            item_id=int(item_ids[position]),
            tag=str(table[int(tag_ids[position])]),
            timestamp=int(timestamps[position]),
        ))
    return store


def load_dataset_from_arena(source: Union[PathLike, Arena]) -> Dataset:
    """Reassemble a query-ready :class:`Dataset` from an arena (zero-copy)."""
    arena = source if isinstance(source, Arena) else Arena.open(source)
    meta = arena.meta
    tags = [str(tag) for tag in meta["tags"]]

    graph = SocialGraph(
        int(meta["num_users"]),
        arena.array("graph.offsets"),
        arena.array("graph.neighbours"),
        arena.array("graph.weights"),
    )
    endorsers = _load_endorser_index(arena, tags)
    inverted = _load_inverted_index(arena, tags, endorsers)
    social = ArenaSocialIndex(
        tags,
        arena.array("social.user_offsets"),
        arena.array("social.user_ids"),
        arena.array("social.segment_offsets"),
        arena.array("social.item_ids"),
    )
    tagging = ArenaTaggingStore(
        endorsers, tags,
        arena.array("actions.user_ids"),
        arena.array("actions.item_ids"),
        arena.array("actions.tag_ids"),
        arena.array("actions.timestamps"),
    )
    users = UserStore()
    users.add_many(User.from_dict(record) for record in meta.get("users", []))
    items = ItemStore()
    items.add_many(Item.from_dict(record) for record in meta.get("items", []))
    return Dataset(
        name=str(meta.get("name", "arena")),
        graph=graph,
        users=users,
        items=items,
        tagging=tagging,
        inverted_index=inverted,
        social_index=social,
        endorser_index=endorsers,
        holdout=_load_holdout(arena),
    )


def load_shards(source: Union[PathLike, Arena]
                ) -> Optional[Tuple[List[int], List[ProximityShard]]]:
    """The arena's materialized proximity shards, or ``None`` when absent."""
    arena = source if isinstance(source, Arena) else Arena.open(source)
    if "materialized.labels" not in arena:
        return None
    labels = [int(label) for label in arena.array("materialized.labels")]
    cluster_ids = arena.array("materialized.cluster_ids")
    member_offsets = arena.array("materialized.member_offsets")
    members = arena.array("materialized.members")
    row_offsets = arena.array("materialized.row_offsets")
    row_user_ids = arena.array("materialized.row_user_ids")
    row_values = arena.array("materialized.row_values")
    bounds = arena.array("materialized.bounds")
    num_users = int(arena.meta["num_users"])
    shards: List[ProximityShard] = []
    for position in range(int(cluster_ids.shape[0])):
        first = int(member_offsets[position])
        last = int(member_offsets[position + 1])
        base = int(row_offsets[first])
        local_offsets = np.asarray(row_offsets[first:last + 1]) - base
        shards.append(ProximityShard(
            cluster_id=int(cluster_ids[position]),
            members=members[first:last],
            offsets=local_offsets,
            user_ids=row_user_ids[base:int(row_offsets[last])],
            values=row_values[base:int(row_offsets[last])],
            bound=bounds[position * num_users:(position + 1) * num_users],
        ))
    return labels, shards


def attach_shards(proximity: MaterializedProximity,
                  source: Union[PathLike, Arena]) -> bool:
    """Install the arena's shards into ``proximity``; returns success.

    Returns ``False`` when the arena carries no shards.  Raises
    :class:`PersistenceError` when it carries shards of a *different*
    measure than the one ``proximity`` wraps — mixing, say, PPR rows with
    shortest-path lazy refinement would silently serve two proximity
    semantics side by side.
    """
    arena = source if isinstance(source, Arena) else Arena.open(source)
    loaded = load_shards(arena)
    if loaded is None:
        return False
    recorded = (arena.meta.get("materialized") or {}).get("measure")
    if recorded is not None and recorded != proximity.inner.name:
        raise PersistenceError(
            f"arena {arena.path} materialized measure {recorded!r} does not "
            f"match the engine's measure {proximity.inner.name!r}")
    labels, shards = loaded
    proximity.install_shards(shards, labels=labels)
    return True


# Re-exported niceties ------------------------------------------------- #

__all__ = [
    "Arena",
    "ArenaInvertedIndex",
    "ArenaSocialIndex",
    "ArenaTaggingStore",
    "attach_shards",
    "build_arena",
    "load_dataset_from_arena",
    "load_shards",
    "write_arena",
]
