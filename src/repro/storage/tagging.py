"""The tagging relation ``Tagged(user, item, tag)``.

This is the central fact table of the system: a row means "user *u*
endorsed item *i* with tag *t*".  The store keeps the raw actions plus the
hash indexes every access path needs:

* ``taggers(item, tag)`` — who endorsed an item with a tag (social scoring);
* ``items_for_user_tag(user, tag)`` — a friend's items for a query tag
  (frontier expansion);
* ``tag_frequency(item, tag)`` — number of distinct endorsers (textual
  scoring; this corpus-style *tf* is what the inverted index sorts by).
"""

from __future__ import annotations

import sys
from bisect import insort
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np


@dataclass(frozen=True, order=True)
class TaggingAction:
    """One tagging action ``(user, item, tag)`` with a logical timestamp."""

    user_id: int
    item_id: int
    tag: str
    timestamp: int = 0

    def __post_init__(self) -> None:
        # Intern the tag: a dataset repeats the same few thousand tag
        # strings across millions of actions and index keys, so interning
        # collapses them to one object each — less allocation churn and
        # pointer-equality fast paths in every per-query dict lookup.
        object.__setattr__(self, "tag", sys.intern(self.tag))

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable representation."""
        return {
            "user_id": self.user_id,
            "item_id": self.item_id,
            "tag": self.tag,
            "timestamp": self.timestamp,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TaggingAction":
        """Rebuild an action from :meth:`to_dict` output."""
        return cls(
            user_id=int(data["user_id"]),
            item_id=int(data["item_id"]),
            tag=str(data["tag"]),
            timestamp=int(data.get("timestamp", 0)),
        )


class TaggingStore:
    """In-memory store of tagging actions with secondary hash indexes."""

    def __init__(self) -> None:
        self._actions: List[TaggingAction] = []
        self._seen: Set[Tuple[int, int, str]] = set()
        # Taggers are kept as ascending lists (duplicates are filtered by
        # ``_seen`` before insertion): scoring iterates them in sorted order
        # on every exact-score call, and the endorser index copies them into
        # its CSR segments verbatim, so sorting once at insert time beats
        # re-sorting a set copy per lookup.
        self._taggers_by_item_tag: Dict[Tuple[int, str], List[int]] = {}
        self._items_by_user_tag: Dict[Tuple[int, str], Set[int]] = {}
        self._items_by_user: Dict[int, Set[int]] = {}
        self._tags_by_user: Dict[int, Dict[str, int]] = {}
        self._items_by_tag: Dict[str, Set[int]] = {}
        self._tag_counts: Dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #

    def add(self, action: TaggingAction) -> bool:
        """Record a tagging action.

        Duplicate ``(user, item, tag)`` triples are ignored (a user endorsing
        the same item with the same tag twice carries no extra signal).
        Returns ``True`` when the action was new.
        """
        key = (action.user_id, action.item_id, action.tag)
        if key in self._seen:
            return False
        self._seen.add(key)
        self._actions.append(action)
        insort(self._taggers_by_item_tag.setdefault((action.item_id, action.tag), []),
               action.user_id)
        self._items_by_user_tag.setdefault((action.user_id, action.tag), set()).add(action.item_id)
        self._items_by_user.setdefault(action.user_id, set()).add(action.item_id)
        user_tags = self._tags_by_user.setdefault(action.user_id, {})
        user_tags[action.tag] = user_tags.get(action.tag, 0) + 1
        self._items_by_tag.setdefault(action.tag, set()).add(action.item_id)
        self._tag_counts[action.tag] = self._tag_counts.get(action.tag, 0) + 1
        return True

    def add_many(self, actions: Iterable[TaggingAction]) -> int:
        """Record a batch of actions; returns the number actually added."""
        return sum(1 for action in actions if self.add(action))

    # ------------------------------------------------------------------ #
    # Access paths
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._actions)

    def actions(self) -> List[TaggingAction]:
        """All stored actions in insertion order (copy)."""
        return list(self._actions)

    def __iter__(self) -> Iterator[TaggingAction]:
        return iter(self._actions)

    def contains(self, user_id: int, item_id: int, tag: str) -> bool:
        """Whether the exact triple has been recorded."""
        return (user_id, item_id, tag) in self._seen

    def taggers(self, item_id: int, tag: str) -> FrozenSet[int]:
        """Users who endorsed ``item_id`` with ``tag``."""
        return frozenset(self._taggers_by_item_tag.get((item_id, tag), ()))

    def taggers_sorted(self, item_id: int, tag: str) -> Sequence[int]:
        """Taggers in ascending id order, with no per-call copy.

        The returned sequence is the store's own list and must not be
        mutated; it is the zero-allocation path the scorer and the endorser
        index build on.
        """
        return self._taggers_by_item_tag.get((item_id, tag), ())

    def tag_frequency(self, item_id: int, tag: str) -> int:
        """Number of distinct users who endorsed ``item_id`` with ``tag``."""
        return len(self._taggers_by_item_tag.get((item_id, tag), ()))

    def items_for_user_tag(self, user_id: int, tag: str) -> FrozenSet[int]:
        """Items ``user_id`` endorsed with ``tag``."""
        return frozenset(self._items_by_user_tag.get((user_id, tag), frozenset()))

    def items_for_user(self, user_id: int) -> FrozenSet[int]:
        """All items ``user_id`` ever endorsed (any tag)."""
        return frozenset(self._items_by_user.get(user_id, frozenset()))

    def tags_for_user(self, user_id: int) -> Dict[str, int]:
        """The user's tag profile: tag → number of actions using it."""
        return dict(self._tags_by_user.get(user_id, {}))

    def items_for_tag(self, tag: str) -> FrozenSet[int]:
        """All items endorsed with ``tag`` by anyone."""
        return frozenset(self._items_by_tag.get(tag, frozenset()))

    def tags(self) -> List[str]:
        """All distinct tags in sorted order."""
        return sorted(self._tag_counts)

    def tag_popularity(self) -> Dict[str, int]:
        """Tag → total number of actions using the tag."""
        return dict(self._tag_counts)

    def users(self) -> List[int]:
        """All user ids that performed at least one action."""
        return sorted(self._items_by_user)

    def items(self) -> List[int]:
        """All item ids that received at least one action."""
        items: Set[int] = set()
        for item_set in self._items_by_tag.values():
            items.update(item_set)
        return sorted(items)

    def activity(self, user_id: int) -> int:
        """Number of actions performed by ``user_id``."""
        return sum(self._tags_by_user.get(user_id, {}).values())

    def action_histograms(self, num_users: int
                          ) -> Tuple[List[str], np.ndarray, np.ndarray]:
        """``(tag_table, activity, popularity)`` for workload sampling.

        ``tag_table`` is the sorted distinct tags, ``activity[user_id]``
        the user's action count (length ``num_users``; out-of-range users
        are dropped) and ``popularity`` the per-tag action counts aligned
        with ``tag_table``.  The histogram contract shared with
        :meth:`~repro.storage.arena.ArenaTaggingStore.action_histograms`:
        equal actions produce equal arrays, so
        :func:`~repro.workload.sampler.sample_workload` draws identical
        workloads from either store.
        """
        tag_table = sorted(self._tag_counts)
        activity = np.zeros(num_users, dtype=np.float64)
        for user_id, profile in self._tags_by_user.items():
            if 0 <= user_id < num_users:
                activity[user_id] = float(sum(profile.values()))
        popularity = np.array([self._tag_counts[tag] for tag in tag_table],
                              dtype=np.float64)
        return tag_table, activity, popularity

    def num_distinct_triples(self) -> int:
        """Number of distinct ``(user, item, tag)`` triples stored."""
        return len(self._seen)

    def filter(self, predicate) -> "TaggingStore":
        """Return a new store containing only the actions matching ``predicate``."""
        filtered = TaggingStore()
        filtered.add_many(action for action in self._actions if predicate(action))
        return filtered

    def split_holdout(self, fraction: float, seed: int = 0
                      ) -> Tuple["TaggingStore", "TaggingStore"]:
        """Split into (train, holdout) stores per user.

        For every user, the *last* ``fraction`` of their actions (by
        timestamp, then insertion order) is withheld.  The holdout is the
        relevance ground truth for quality experiments: items the seeker
        will tag in the future are what a good ranking should surface today.
        """
        if not 0.0 <= fraction < 1.0:
            raise ValueError(f"fraction must be in [0, 1), got {fraction}")
        by_user: Dict[int, List[TaggingAction]] = {}
        for index, action in enumerate(self._actions):
            by_user.setdefault(action.user_id, []).append(action)
        train = TaggingStore()
        holdout = TaggingStore()
        for user_id in sorted(by_user):
            actions = sorted(by_user[user_id], key=lambda a: (a.timestamp, a.item_id, a.tag))
            cut = len(actions) - int(len(actions) * fraction)
            cut = max(1, cut) if actions else 0
            train.add_many(actions[:cut])
            holdout.add_many(actions[cut:])
        return train, holdout
