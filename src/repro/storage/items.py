"""Item catalogue.

Items are the objects users tag and queries return: bookmarks, photos,
posts.  The store assigns no meaning to the payload beyond a title and an
optional URL; ranking only ever consults the tagging relation.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, Iterator, List, Optional

from ..errors import DuplicateItemError, UnknownItemError


@dataclass(frozen=True)
class Item:
    """One catalogued item.

    Attributes
    ----------
    item_id:
        Dense integer identifier.
    title:
        Human-readable title used by examples and result rendering.
    url:
        Optional source URL (bookmark-style corpora).
    attributes:
        Free-form metadata; never consulted by ranking.
    """

    item_id: int
    title: str = ""
    url: Optional[str] = None
    attributes: Dict[str, str] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable representation."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Item":
        """Rebuild an item from :meth:`to_dict` output."""
        return cls(
            item_id=int(data["item_id"]),
            title=str(data.get("title", "")),
            url=data.get("url"),
            attributes=dict(data.get("attributes", {})),
        )


class ItemStore:
    """In-memory item catalogue keyed by item id."""

    def __init__(self) -> None:
        self._items: Dict[int, Item] = {}

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, item_id: int) -> bool:
        return item_id in self._items

    def add(self, item: Item) -> None:
        """Register an item; re-adding an identical record is a no-op."""
        existing = self._items.get(item.item_id)
        if existing is not None and existing != item:
            raise DuplicateItemError(
                f"item id {item.item_id} already registered with a different payload"
            )
        self._items[item.item_id] = item

    def add_many(self, items: Iterator[Item]) -> None:
        """Register a batch of items."""
        for item in items:
            self.add(item)

    def get(self, item_id: int) -> Item:
        """Return the item with ``item_id`` or raise :class:`UnknownItemError`."""
        try:
            return self._items[item_id]
        except KeyError:
            raise UnknownItemError(item_id) from None

    def get_or_none(self, item_id: int) -> Optional[Item]:
        """Return the item or ``None`` when absent."""
        return self._items.get(item_id)

    def ensure(self, item_id: int) -> Item:
        """Return the item, creating a placeholder record when absent."""
        if item_id not in self._items:
            self._items[item_id] = Item(item_id=item_id, title=f"item-{item_id}")
        return self._items[item_id]

    def ids(self) -> List[int]:
        """All registered item ids in sorted order."""
        return sorted(self._items)

    def __iter__(self) -> Iterator[Item]:
        for item_id in sorted(self._items):
            yield self._items[item_id]
