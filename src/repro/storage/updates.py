"""Incremental dataset maintenance.

A production deployment of the system does not rebuild its indexes from
scratch whenever a user bookmarks something or befriends someone; it applies
the delta.  :class:`DatasetUpdater` provides that path: it accepts new
tagging actions, users, items and friendships, applies them to the stores,
and refreshes only the derived state that actually changed — the posting
list and endorser CSR of each *touched tag* are re-merged in place (O(tag)
per update, see :mod:`repro.storage.delta`), the social profiles of the
touched ``(user, tag)`` pairs are patched, and — because the CSR graph is
immutable — the graph itself is rebuilt only when edges were added.

Arena-backed datasets additionally accumulate the raw actions in small
delta overlays on top of their frozen memory-mapped arrays;
:meth:`DatasetUpdater.compact` (driven by a ``compact_threshold``, or by
:class:`repro.service.QueryService` in the background) folds those deltas
back into fresh contiguous arrays and advances the updater's **epoch**.
Because a delta-merged read and a compacted read are value-identical, a
query racing a compaction sees consistent data whichever epoch's structures
it grabs.

The updater is also the substrate of "streaming" experiments: replay a trace
against a live dataset and interleave queries with updates.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from ..errors import StorageError
from ..graph import SocialGraph, SocialGraphBuilder
from ..obs.faults import fault_point
from ..obs.trace import span as obs_span
from .dataset import Dataset
from .delta import posting_deltas
from .items import Item
from .tagging import TaggingAction
from .users import User
from .wal import WriteAheadLog


@dataclass
class UpdateSummary:
    """What one :meth:`DatasetUpdater.apply` call actually changed."""

    actions_added: int = 0
    actions_ignored: int = 0
    edges_added: int = 0
    users_added: int = 0
    items_added: int = 0
    tags_touched: Set[str] = field(default_factory=set)
    users_touched: Set[int] = field(default_factory=set)
    #: ``item -> first endorsing user`` of the batch's recorded actions;
    #: the corpus partition layer routes freshly written items to the
    #: partition owning that user's community (seeker locality survives
    #: live updates).
    items_touched: Dict[int, int] = field(default_factory=dict)

    @property
    def changed(self) -> bool:
        """Whether this update modified the dataset at all."""
        return bool(self.actions_added or self.edges_added
                    or self.users_added or self.items_added)

    @property
    def graph_rebuilt(self) -> bool:
        """Whether the CSR graph object was replaced (observers must rebind)."""
        return bool(self.edges_added or self.users_added)

    def merge(self, other: "UpdateSummary") -> None:
        """Accumulate another summary into this one."""
        self.actions_added += other.actions_added
        self.actions_ignored += other.actions_ignored
        self.edges_added += other.edges_added
        self.users_added += other.users_added
        self.items_added += other.items_added
        self.tags_touched |= other.tags_touched
        self.users_touched |= other.users_touched
        for item_id, user_id in other.items_touched.items():
            self.items_touched.setdefault(item_id, user_id)

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict view for logs."""
        return {
            "actions_added": self.actions_added,
            "actions_ignored": self.actions_ignored,
            "edges_added": self.edges_added,
            "users_added": self.users_added,
            "items_added": self.items_added,
            "tags_touched": sorted(self.tags_touched),
            "users_touched": sorted(self.users_touched),
            "items_touched": {str(item): user for item, user
                              in sorted(self.items_touched.items())},
        }


class DatasetUpdater:
    """Applies incremental updates to a :class:`~repro.storage.dataset.Dataset`.

    The updater mutates the dataset it wraps: after :meth:`apply` (or the
    convenience methods) the dataset's stores, indexes and graph reflect the
    update.  Engines built on the dataset should be recreated — or at least
    their proximity caches cleared — after graph changes, which is why
    :meth:`apply` reports whether the graph was rebuilt.
    """

    def __init__(self, dataset: Dataset, compact_threshold: int = 0) -> None:
        self._dataset = dataset
        self._observers: List[Callable[[UpdateSummary], None]] = []  # guarded-by: _mutate_lock
        self._in_batch = False  # guarded-by: _mutate_lock
        # Serialises mutations: concurrent updates (e.g. two simultaneous
        # HTTP /update requests) would otherwise both rebuild the graph from
        # the same snapshot and the later assignment would drop the earlier
        # one's edges.  Re-entrant because apply() calls the add_* methods.
        self._mutate_lock = threading.RLock()
        #: Auto-compact inline once the pending delta reaches this size
        #: (0 disables; the serving layer prefers to drive compaction in the
        #: background instead, see ``QueryService``).
        self._compact_threshold = max(0, int(compact_threshold))
        self._epoch = 0  # guarded-by: _mutate_lock
        #: Optional write-ahead log: when attached, every effective update
        #: is appended (and made durable per the log's fsync policy)
        #: *before* the public call returns — i.e. before the update is
        #: acknowledged.  A crash after the append loses nothing: recovery
        #: replays the record through this same incremental path.
        self._wal: Optional[WriteAheadLog] = None  # guarded-by: _mutate_lock

    @property
    def dataset(self) -> Dataset:
        """The live dataset being maintained."""
        return self._dataset

    @property
    def epoch(self) -> int:
        """Number of compactions performed so far."""
        return self._epoch

    @property
    def compact_threshold(self) -> int:
        """Pending-delta size that triggers an inline compaction (0 = off)."""
        return self._compact_threshold

    @property
    def wal(self) -> Optional[WriteAheadLog]:
        """The attached write-ahead log, if any."""
        return self._wal

    @property
    def mutate_lock(self) -> threading.RLock:
        """The writer lock; the durable store holds it across a checkpoint
        so no update can be acknowledged into the *old* WAL segment after
        the new generation's arena has been built."""
        return self._mutate_lock

    def attach_wal(self, wal: Optional[WriteAheadLog]) -> None:
        """Attach (or with ``None`` detach) the updater's write-ahead log.

        Detaching is what recovery uses while *replaying* records — the
        replayed updates are already durable and must not be re-appended.
        """
        with self._mutate_lock:
            self._wal = wal

    def pending_delta(self) -> int:
        """Number of delta actions awaiting compaction.

        Non-zero only for array-backed (arena) datasets: the in-memory
        stores absorb updates directly into their hash indexes and the
        derived per-tag arrays are refreshed in place, so they have nothing
        pending.
        """
        return int(getattr(self._dataset.tagging, "delta_size", 0))

    def restore_epoch(self, epoch: int) -> None:
        """Reset the epoch counter (crash-recovery continuity only)."""
        with self._mutate_lock:
            self._epoch = int(epoch)

    def compact(self) -> int:
        """Fold the delta overlays back into fresh frozen arrays.

        Folds the arena tagging store's delta (its base snapshot advances to
        the live endorser index, which incremental maintenance has already
        merged the same delta into) and the arena social index's overlay.
        Value-identical before and after — readers racing the swap see
        consistent data either way — so this is safe to run on a background
        thread while queries are being served; only writers are blocked.
        Returns the number of delta actions folded; 0 when nothing was
        pending.

        Compaction is **two-phase** for failure atomicity: both stores
        first *stage* their next epoch (all the work that can fail —
        validation, allocation, snapshotting), then an epoch marker is
        appended to the WAL (which can also fail), and only then do the
        stores *commit* via pure attribute swaps that cannot raise.  An
        exception anywhere before the commit leaves the updater on the old
        epoch with its merged reads fully intact.
        """
        with self._mutate_lock, obs_span("updates.compact") as compact_span:
            tagging = self._dataset.tagging
            social = self._dataset.social_index
            stage_tagging = getattr(tagging, "stage_compact", None)
            staged_tagging = None
            folded = 0
            if stage_tagging is not None:
                staged_tagging = stage_tagging(self._dataset.endorser_index)
                if staged_tagging is not None:
                    folded = staged_tagging[1]
            fault_point("compact.stage")
            stage_social = getattr(social, "stage_compact", None)
            staged_social = stage_social() if stage_social is not None else None
            if folded and self._wal is not None:
                # The marker is durable before the swap: recovery can
                # correlate log positions with epochs, and a failing append
                # aborts the compaction with the old epoch intact.
                self._wal.append_epoch(self._epoch + 1, folded=folded)
            fault_point("compact.commit")
            if staged_tagging is not None:
                tagging.commit_compact(staged_tagging)
            if staged_social is not None:
                social.commit_compact(staged_social)
            if folded:
                self._epoch += 1
            compact_span.set(actions_folded=folded)
            return folded

    # ------------------------------------------------------------------ #
    # Observer hooks
    # ------------------------------------------------------------------ #

    def subscribe(self, observer: Callable[[UpdateSummary], None]) -> Callable[[UpdateSummary], None]:
        """Register a callback invoked after every effective update.

        Observers receive the :class:`UpdateSummary` of each public update
        call that changed the dataset — :meth:`apply` notifies once with the
        merged summary of the whole batch, not once per component.  This is
        how serving-layer caches (:class:`repro.service.QueryService`) learn
        which tags and users went stale.  Returns the observer so the call
        can be used inline.
        """
        with self._mutate_lock:
            self._observers.append(observer)
        return observer

    def unsubscribe(self, observer: Callable[[UpdateSummary], None]) -> None:
        """Remove a previously registered observer (no-op when absent)."""
        with self._mutate_lock:
            try:
                self._observers.remove(observer)
            except ValueError:
                pass

    def _notify(self, summary: UpdateSummary) -> UpdateSummary:
        # No-op updates (duplicate actions, empty batches) must not reach
        # observers: a notification triggers cache invalidations and shard
        # staleness marks downstream, which would evict perfectly fresh
        # state for nothing.
        if not self._in_batch and summary.changed:
            for observer in list(self._observers):
                observer(summary)
            if (self._compact_threshold
                    and self.pending_delta() >= self._compact_threshold):
                self.compact()
        return summary

    # ------------------------------------------------------------------ #
    # Individual update kinds
    # ------------------------------------------------------------------ #

    def add_users(self, count: int) -> UpdateSummary:
        """Grow the user domain by ``count`` fresh (isolated) users."""
        if count < 0:
            raise StorageError(f"cannot add a negative number of users: {count}")
        summary = UpdateSummary()
        if count == 0:
            return summary
        with self._mutate_lock:
            old = self._dataset.graph
            new_size = old.num_users + count
            builder = SocialGraphBuilder(new_size)
            for u, v, w in old.iter_edges():
                builder.add_edge(u, v, w)
            self._dataset.graph = builder.build()
            for user_id in range(old.num_users, new_size):
                self._dataset.users.add(User(user_id=user_id, name=f"user-{user_id}"))
            summary.users_added = count
            if self._wal is not None:
                self._wal.append("users", {"count": count})
            return self._notify(summary)

    def add_items(self, items: Iterable[Item]) -> UpdateSummary:
        """Register new items in the catalogue."""
        summary = UpdateSummary()
        added: List[Item] = []
        with self._mutate_lock:
            for item in items:
                if item.item_id not in self._dataset.items:
                    self._dataset.items.add(item)
                    added.append(item)
                    summary.items_added += 1
            if added and self._wal is not None:
                self._wal.append("items", {
                    "items": [item.to_dict() for item in added]})
            return self._notify(summary)

    def add_friendships(self, edges: Iterable[Tuple[int, int, float]]) -> UpdateSummary:
        """Add friendships; the CSR graph is rebuilt once for the whole batch."""
        edges = list(edges)
        summary = UpdateSummary()
        if not edges:
            return summary
        with self._mutate_lock, obs_span("updates.graph_rebuild",
                                         edges=len(edges)):
            old = self._dataset.graph
            builder = SocialGraphBuilder(old.num_users)
            for u, v, w in old.iter_edges():
                builder.add_edge(u, v, w)
            before = builder.num_edges
            for u, v, w in edges:
                builder.add_edge(u, v, w)
                summary.users_touched.update((u, v))
            summary.edges_added = builder.num_edges - before
            self._dataset.graph = builder.build()
            if summary.edges_added and self._wal is not None:
                # The full batch is logged (not just the novel edges):
                # replaying duplicates through the graph builder is
                # idempotent, and the record mirrors what the caller sent.
                self._wal.append("friendships", {
                    "edges": [[int(u), int(v), float(w)] for u, v, w in edges]})
            return self._notify(summary)

    def add_actions(self, actions: Iterable[TaggingAction]) -> UpdateSummary:
        """Record tagging actions and refresh the affected index entries.

        Maintenance is incremental: the batch's newly recorded (post-dedup)
        actions form an explicit delta — ``tag -> item -> [taggers]`` and
        ``(user, tag) -> [items]`` — and only the touched tags' posting
        lists / endorser CSR bundles and the touched profiles are re-merged,
        in place, against their frozen arrays.  The refreshed entries are
        value-identical to a from-scratch index rebuild over the merged
        store, so queries racing the per-tag swaps see consistent data.
        """
        summary = UpdateSummary()
        touched_tags: Set[str] = set()
        touched_users: Set[int] = set()
        recorded: List[TaggingAction] = []
        by_tag: Dict[str, Dict[int, List[int]]] = {}
        by_user_tag: Dict[Tuple[int, str], List[int]] = {}
        with self._mutate_lock:
            for action in actions:
                if not 0 <= action.user_id < self._dataset.graph.num_users:
                    raise StorageError(
                        f"tagging action references user {action.user_id}, but the "
                        f"graph only has {self._dataset.graph.num_users} users"
                    )
                if self._dataset.tagging.add(action):
                    summary.actions_added += 1
                    recorded.append(action)
                    touched_tags.add(action.tag)
                    touched_users.add(action.user_id)
                    summary.items_touched.setdefault(action.item_id,
                                                     action.user_id)
                    by_tag.setdefault(action.tag, {}) \
                        .setdefault(action.item_id, []).append(action.user_id)
                    by_user_tag.setdefault((action.user_id, action.tag), []) \
                        .append(action.item_id)
                    self._dataset.items.ensure(action.item_id)
                    self._dataset.users.ensure(action.user_id)
                else:
                    summary.actions_ignored += 1
            if summary.actions_added:
                with obs_span("updates.delta_merge",
                              actions=summary.actions_added,
                              tags=len(touched_tags)):
                    self._dataset.endorser_index.apply_delta(by_tag)
                    self._dataset.inverted_index.apply_delta(
                        posting_deltas(by_tag))
                    self._dataset.social_index.apply_delta(by_user_tag)
                if self._wal is not None:
                    # Durable *before* the caller gets its summary back —
                    # the WAL contract: an acknowledged action survives a
                    # crash.  A failing append raises and nothing is acked
                    # (the in-memory state is ahead of the log, which is
                    # safe: at-least-once, never lost-after-ack).  Only the
                    # effective post-dedup actions are logged, so replaying
                    # through this same method is exactly idempotent.
                    self._wal.append_actions(recorded)
            summary.tags_touched = touched_tags
            summary.users_touched |= touched_users
            return self._notify(summary)

    # ------------------------------------------------------------------ #
    # Batch application
    # ------------------------------------------------------------------ #

    def apply(self, actions: Optional[Iterable[TaggingAction]] = None,
              friendships: Optional[Iterable[Tuple[int, int, float]]] = None,
              new_users: int = 0,
              new_items: Optional[Iterable[Item]] = None) -> UpdateSummary:
        """Apply a mixed batch of updates in a safe order.

        Users are added first (so new friendships and actions may reference
        them), then items, friendships, and finally tagging actions.
        """
        summary = UpdateSummary()
        with self._mutate_lock:
            self._in_batch = True
            try:
                if new_users:
                    summary.merge(self.add_users(new_users))
                if new_items is not None:
                    summary.merge(self.add_items(new_items))
                if friendships is not None:
                    summary.merge(self.add_friendships(friendships))
                if actions is not None:
                    summary.merge(self.add_actions(actions))
            finally:
                self._in_batch = False
            return self._notify(summary)


def replay_trace(dataset: Dataset, actions: Iterable[TaggingAction],
                 batch_size: int = 100) -> List[UpdateSummary]:
    """Replay a stream of actions against a live dataset in batches.

    Returns one :class:`UpdateSummary` per applied batch; useful for
    simulating a live system that interleaves updates with queries.
    """
    if batch_size < 1:
        raise StorageError(f"batch_size must be >= 1, got {batch_size}")
    updater = DatasetUpdater(dataset)
    summaries: List[UpdateSummary] = []
    batch: List[TaggingAction] = []
    for action in actions:
        batch.append(action)
        if len(batch) >= batch_size:
            summaries.append(updater.add_actions(batch))
            batch = []
    if batch:
        summaries.append(updater.add_actions(batch))
    return summaries
