"""User catalogue.

Users are identified by the same dense integer ids the social graph uses;
this store attaches display metadata and activity summaries to those ids.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, Iterator, List, Optional

from ..errors import UnknownUserError


@dataclass(frozen=True)
class User:
    """One user profile record.

    Attributes
    ----------
    user_id:
        Dense integer identifier matching the social-graph node id.
    name:
        Display name used by examples.
    attributes:
        Free-form metadata; never consulted by ranking.
    """

    user_id: int
    name: str = ""
    attributes: Dict[str, str] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable representation."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "User":
        """Rebuild a user from :meth:`to_dict` output."""
        return cls(
            user_id=int(data["user_id"]),
            name=str(data.get("name", "")),
            attributes=dict(data.get("attributes", {})),
        )


class UserStore:
    """In-memory user catalogue keyed by user id."""

    def __init__(self) -> None:
        self._users: Dict[int, User] = {}

    def __len__(self) -> int:
        return len(self._users)

    def __contains__(self, user_id: int) -> bool:
        return user_id in self._users

    def add(self, user: User) -> None:
        """Register (or overwrite) a user record."""
        self._users[user.user_id] = user

    def add_many(self, users: Iterator[User]) -> None:
        """Register a batch of users."""
        for user in users:
            self.add(user)

    def get(self, user_id: int) -> User:
        """Return the user or raise :class:`UnknownUserError`."""
        try:
            return self._users[user_id]
        except KeyError:
            raise UnknownUserError(user_id, len(self._users)) from None

    def get_or_none(self, user_id: int) -> Optional[User]:
        """Return the user or ``None`` when absent."""
        return self._users.get(user_id)

    def ensure(self, user_id: int) -> User:
        """Return the user, creating a placeholder record when absent."""
        if user_id not in self._users:
            self._users[user_id] = User(user_id=user_id, name=f"user-{user_id}")
        return self._users[user_id]

    def ids(self) -> List[int]:
        """All registered user ids in sorted order."""
        return sorted(self._users)

    def __iter__(self) -> Iterator[User]:
        for user_id in sorted(self._users):
            yield self._users[user_id]

    @classmethod
    def with_placeholder_users(cls, num_users: int) -> "UserStore":
        """Create a store pre-populated with ``num_users`` placeholder profiles."""
        store = cls()
        for user_id in range(num_users):
            store.add(User(user_id=user_id, name=f"user-{user_id}"))
        return store
