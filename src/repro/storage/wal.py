"""Append-only update log (WAL) for the durable write path.

Acknowledged live updates used to live only in in-memory delta overlays
(:mod:`repro.storage.delta`): a crash lost every update since the arena was
built.  The WAL closes that hole — :class:`~repro.storage.updates.DatasetUpdater`
appends each effective update batch *before acknowledging it*, so recovery
(:mod:`repro.storage.durable`) can replay the log over the newest arena
generation and reconstruct exactly the acknowledged state.

On-disk format (little-endian)::

    magic "RPRWAL01"                               (8-byte file header)
    repeat:
        uint32 payload_length | uint32 crc32(payload) | payload bytes

The payload is one UTF-8 JSON object ``{"kind": ..., ...}``; record kinds
are ``actions`` / ``friendships`` / ``users`` / ``items`` (the update
batches) and ``epoch`` (a marker emitted by ``DatasetUpdater.compact``
when the delta overlays fold, letting readers correlate log positions with
arena generations).  The length prefix + CRC make every record
self-validating: a **torn final record** — the one crash artefact an
append-only log can legally contain — is detected by a short read or a CRC
mismatch and treated as end-of-log, never as corruption of the records
before it.

Durability is governed by the **fsync policy**:

* ``always`` — fsync after every append: an acknowledgement implies the
  record is on stable storage (the default, and the only policy under
  which the "zero acked updates lost" guarantee is unconditional);
* ``interval`` — flush every append, fsync at most once per
  ``fsync_interval_seconds``: bounded data loss, amortised fsync cost;
* ``off`` — flush to the OS page cache only: survives process crashes but
  not power loss; the benchmark baseline.

Appends, replay and fsyncs are instrumented: spans via
:mod:`repro.obs.trace` and counters/histograms pushed into the process
metrics registry (``repro_wal_*``), surfaced by ``GET /metrics``.
"""

from __future__ import annotations

import json
import struct
import threading
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from ..errors import PersistenceError
from ..obs.faults import fault_point
from ..obs.metrics import MetricsRegistry, get_registry
from ..obs.trace import span as obs_span
from .items import Item
from .tagging import TaggingAction

PathLike = Union[str, Path]

WAL_MAGIC = b"RPRWAL01"
_RECORD_HEADER = struct.Struct("<II")

FSYNC_POLICIES = ("always", "interval", "off")

#: Record kinds understood by replay (anything else is rejected at append).
RECORD_KINDS = ("actions", "friendships", "users", "items", "epoch")


@dataclass(frozen=True)
class WalRecord:
    """One decoded log record: its kind, JSON payload and position."""

    lsn: int
    kind: str
    payload: Dict[str, object]

    def actions(self) -> List[TaggingAction]:
        """The tagging actions of an ``actions`` record."""
        return [TaggingAction.from_dict(entry)
                for entry in self.payload.get("actions", [])]

    def friendships(self) -> List[Tuple[int, int, float]]:
        """The ``(u, v, w)`` edges of a ``friendships`` record."""
        return [(int(u), int(v), float(w))
                for u, v, w in self.payload.get("edges", [])]

    def items(self) -> List[Item]:
        """The catalogue items of an ``items`` record."""
        return [Item.from_dict(entry)
                for entry in self.payload.get("items", [])]


@dataclass
class WalScan:
    """Result of scanning a log file: the valid prefix plus tail diagnosis."""

    records: List[WalRecord] = field(default_factory=list)
    #: Byte offset one past the last fully valid record; appending must
    #: resume here (truncating any torn tail first).
    valid_bytes: int = len(WAL_MAGIC)
    #: Whether trailing bytes past the valid prefix were found and ignored.
    torn: bool = False


def _encode_record(kind: str, payload: Dict[str, object]) -> bytes:
    body = dict(payload)
    body["kind"] = kind
    encoded = json.dumps(body, sort_keys=True).encode("utf-8")
    return _RECORD_HEADER.pack(len(encoded), zlib.crc32(encoded)) + encoded


class WriteAheadLog:
    """One append-only log segment with a configurable fsync policy.

    Thread-safe: appends from concurrent updaters serialise on an internal
    lock (the callers — ``DatasetUpdater`` under its mutate lock — already
    serialise, but the log must not rely on that).
    """

    def __init__(self, path: PathLike, fsync: str = "always",
                 fsync_interval_seconds: float = 0.05,
                 registry: Optional[MetricsRegistry] = None) -> None:
        if fsync not in FSYNC_POLICIES:
            raise PersistenceError(
                f"unknown WAL fsync policy {fsync!r}; "
                f"expected one of {FSYNC_POLICIES}")
        if fsync_interval_seconds < 0:
            raise PersistenceError(
                f"fsync_interval_seconds must be >= 0, "
                f"got {fsync_interval_seconds}")
        self.path = Path(path)
        self.fsync_policy = fsync
        self.fsync_interval_seconds = fsync_interval_seconds
        self._lock = threading.Lock()
        self._last_fsync = 0.0  # guarded-by: _lock
        self._closed = False  # guarded-by: _lock
        registry = registry or get_registry()
        self._records_metric = registry.counter(
            "wal_records_appended_total", "WAL records appended.")
        self._bytes_metric = registry.counter(
            "wal_bytes_appended_total", "WAL bytes appended.")
        self._fsync_metric = registry.counter(
            "wal_fsync_total", "WAL fsync calls issued.")
        self._fsync_histogram = registry.histogram(
            "wal_fsync_seconds", "Latency of WAL fsync calls.")
        # Session accounting (the registry counters aggregate across
        # segments and processes; these are this segment's own numbers).
        self.records_appended = 0  # guarded-by: _lock
        self.bytes_appended = 0  # guarded-by: _lock
        self.fsyncs = 0  # guarded-by: _lock
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fresh = not self.path.exists() or self.path.stat().st_size == 0
        self._handle = self.path.open("ab")
        if fresh:
            self._handle.write(WAL_MAGIC)
            self._handle.flush()
            self._fsync(force=True)

    # ------------------------------------------------------------------ #
    # Appending
    # ------------------------------------------------------------------ #

    def append(self, kind: str, payload: Dict[str, object]) -> int:
        """Append one record and make it durable per the fsync policy.

        Returns the record's LSN (its index within this segment).  The
        record is on stable storage when this returns under the ``always``
        policy; under ``interval``/``off`` it is at least in the OS page
        cache.  Raises :class:`PersistenceError` for unknown kinds and
        propagates I/O errors — the caller must *not* acknowledge the
        update when append raises.
        """
        if kind not in RECORD_KINDS:
            raise PersistenceError(
                f"unknown WAL record kind {kind!r}; "
                f"expected one of {RECORD_KINDS}")
        blob = _encode_record(kind, payload)
        with self._lock, obs_span("wal.append", kind=kind, bytes=len(blob)):
            if self._closed:
                raise PersistenceError(
                    f"cannot append to closed WAL {self.path}")
            fault_point("wal.before_append")
            self._handle.write(blob)
            self._handle.flush()
            if self.fsync_policy == "always":
                self._fsync(force=True)
            elif self.fsync_policy == "interval":
                self._fsync(force=False)
            lsn = self.records_appended
            self.records_appended += 1
            self.bytes_appended += len(blob)
            self._records_metric.inc()
            self._bytes_metric.inc(len(blob))
            fault_point("wal.after_append")
            return lsn

    def append_actions(self, actions: Iterable[TaggingAction]) -> int:
        """Append an ``actions`` record (the common live-update batch)."""
        return self.append("actions", {
            "actions": [action.to_dict() for action in actions]})

    def append_epoch(self, epoch: int, folded: int = 0) -> int:
        """Append the marker ``DatasetUpdater.compact`` emits per fold."""
        return self.append("epoch", {"epoch": int(epoch),
                                     "folded": int(folded)})

    def sync(self) -> None:
        """Force an fsync regardless of policy (checkpoint barriers)."""
        with self._lock:
            if not self._closed:
                self._handle.flush()
                self._fsync(force=True)

    def _fsync(self, force: bool) -> None:  # lock-held: _lock
        now = time.monotonic()
        if not force and now - self._last_fsync < self.fsync_interval_seconds:
            return
        fault_point("wal.fsync")
        started = time.perf_counter()
        import os

        os.fsync(self._handle.fileno())
        self._fsync_histogram.observe(time.perf_counter() - started)
        self._fsync_metric.inc()
        self.fsyncs += 1
        self._last_fsync = now

    # ------------------------------------------------------------------ #
    # Lifecycle / introspection
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Flush, sync and close the segment (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._handle.flush()
            try:
                self._fsync(force=True)
            finally:
                self._closed = True
                self._handle.close()

    def stats(self) -> Dict[str, object]:
        """Plain-dict accounting for ``stats()`` / logs."""
        return {
            "path": str(self.path),
            "fsync_policy": self.fsync_policy,
            "records_appended": self.records_appended,
            "bytes_appended": self.bytes_appended,
            "fsyncs": self.fsyncs,
        }

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


# --------------------------------------------------------------------- #
# Reading a log back
# --------------------------------------------------------------------- #

def scan_wal(path: PathLike) -> WalScan:
    """Decode every valid record of a log file, tolerating a torn tail.

    The scan stops — without raising — at the first short header, short
    payload or CRC mismatch: that is the torn final record a crash during
    an append legally leaves behind.  A bad *magic* or an unreadable file
    is real corruption and raises :class:`PersistenceError`.
    """
    path = Path(path)
    try:
        blob = path.read_bytes()
    except OSError as exc:
        raise PersistenceError(f"failed to read WAL {path}: {exc}") from exc
    if len(blob) < len(WAL_MAGIC) or blob[:len(WAL_MAGIC)] != WAL_MAGIC:
        raise PersistenceError(f"{path}: not a WAL file (bad magic)")
    scan = WalScan()
    offset = len(WAL_MAGIC)
    with obs_span("wal.scan", path=str(path)) as scan_span:
        while offset < len(blob):
            if offset + _RECORD_HEADER.size > len(blob):
                scan.torn = True
                break
            length, crc = _RECORD_HEADER.unpack_from(blob, offset)
            start = offset + _RECORD_HEADER.size
            end = start + length
            if end > len(blob):
                scan.torn = True
                break
            payload_bytes = blob[start:end]
            if zlib.crc32(payload_bytes) != crc:
                scan.torn = True
                break
            try:
                payload = json.loads(payload_bytes.decode("utf-8"))
                kind = str(payload.pop("kind"))
            except (ValueError, KeyError) as exc:
                raise PersistenceError(
                    f"{path}: record {len(scan.records)} passed its CRC "
                    f"but failed to decode: {exc}") from exc
            scan.records.append(WalRecord(lsn=len(scan.records), kind=kind,
                                          payload=payload))
            offset = end
            scan.valid_bytes = offset
        scan_span.set(records=len(scan.records), torn=scan.torn)
    return scan


def torn_tail_offset(path: PathLike) -> int:
    """Byte offset where the final record of a log file begins.

    Used by the fault harness to tear the last record; raises
    :class:`PersistenceError` when the file holds no complete record.
    """
    scan = scan_wal(path)
    if not scan.records:
        raise PersistenceError(f"{path}: no complete record to tear")
    last = scan.records[-1]
    blob = _encode_record(last.kind, dict(last.payload))
    return scan.valid_bytes - len(blob)


def truncate_torn_tail(path: PathLike) -> int:
    """Drop any torn tail so the file ends at its last valid record.

    Returns the number of bytes removed (0 when the file was clean).
    Appending to a log whose tail is torn would strand the new records
    behind garbage, so recovery calls this before reopening the segment
    for writing.
    """
    path = Path(path)
    scan = scan_wal(path)
    size = path.stat().st_size
    removed = size - scan.valid_bytes
    if removed > 0:
        with path.open("rb+") as handle:
            handle.truncate(scan.valid_bytes)
            import os

            os.fsync(handle.fileno())
    return removed


__all__ = [
    "FSYNC_POLICIES",
    "RECORD_KINDS",
    "WAL_MAGIC",
    "WalRecord",
    "WalScan",
    "WriteAheadLog",
    "scan_wal",
    "torn_tail_offset",
    "truncate_torn_tail",
]
