"""Corpus partitioning: item shards for scatter-gather top-k.

Scaling query execution across cores (and eventually machines) needs the
corpus split into **partitions** that can be scanned independently.  The
unit of partitioning is the *item*: every item belongs to exactly one
partition, a query scatters over the partitions whose items could reach its
top-k, and the partial results gather back into one ranking.

The split is **seeker-local**: items are assigned to the partition owning
the community that endorses them most.  Communities come from
:func:`repro.graph.partition.label_propagation` (seeded, so layouts are
reproducible), communities are packed onto ``P`` partitions largest-first
onto the least-loaded partition, and each item follows the majority of its
taggers.  Under homophilous workloads a seeker's high-social-mass items
then concentrate in one partition while the others' social upper bounds
collapse — which is what lets the partitioned executor prune whole shards
(see :mod:`repro.core.partition_exec`).  Items nobody tagged (and items the
layout has never seen, e.g. created by live updates before they are
routed) fall back to ``item_id % P``, so the map is total by construction.

:class:`CorpusPartitions` stores only the assignment — one dense int array
over item ids plus one over user ids.  Per-partition "index views" are
*positional*: the executor carves candidate blocks with
:meth:`partition_of_items` and keeps reading the existing arena/CSR payload
arrays (posting lists, endorser CSR, proximity shards) through subset
gathers; no payload is ever copied per partition.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..errors import StorageError
from ..graph.partition import label_propagation

_EMPTY = np.zeros(0, dtype=np.int64)


class CorpusPartitions:
    """Total item → partition assignment (plus the user map it derives from).

    Parameters
    ----------
    num_partitions:
        Number of item shards ``P`` (>= 1).
    item_map:
        Dense ``item_id -> partition`` array; ``-1`` marks "unassigned, use
        the hash fallback".  Ids beyond the array also hash.
    user_map:
        Dense ``user_id -> partition`` array used to route freshly tagged
        items to the partition owning their first endorser.
    """

    def __init__(self, num_partitions: int, item_map: np.ndarray,
                 user_map: np.ndarray) -> None:
        if num_partitions < 1:
            raise StorageError(
                f"num_partitions must be >= 1, got {num_partitions}")
        self.num_partitions = int(num_partitions)
        self._item_map = np.asarray(item_map, dtype=np.int64)  # guarded-by: _lock
        self._user_map = np.asarray(user_map, dtype=np.int64)  # guarded-by: _lock
        # Routing live updates appends to the item map; queries only read
        # whole arrays, so a lock around the swap keeps readers consistent.
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def build(cls, dataset, num_partitions: int, cluster_rounds: int = 5,
              seed: int = 0) -> "CorpusPartitions":
        """Partition ``dataset`` into ``num_partitions`` seeker-local shards.

        Label propagation (seeded → reproducible) groups users into
        communities, communities are packed largest-first onto the
        least-loaded partition, and every item lands on the partition whose
        users endorse it most (ties to the smaller partition id, items with
        no endorsers to the hash fallback).
        """
        if num_partitions < 1:
            raise StorageError(
                f"num_partitions must be >= 1, got {num_partitions}")
        graph = dataset.graph
        user_map = np.zeros(graph.num_users, dtype=np.int64)
        if num_partitions > 1 and graph.num_users:
            labels = label_propagation(graph, max_rounds=cluster_rounds,
                                       seed=seed)
            user_map = _pack_communities(labels, num_partitions)
        max_item = -1
        for tag in dataset.endorser_index.tags():
            bundle = dataset.endorser_index.for_tag(tag)
            if bundle is not None and len(bundle):
                max_item = max(max_item, int(bundle.item_ids[-1]))
        item_map = np.full(max_item + 1, -1, dtype=np.int64)
        if num_partitions > 1 and max_item >= 0:
            # Endorsement mass per (item, partition): one add.at per tag
            # bundle over the existing CSR arrays, no per-item Python loop.
            votes = np.zeros((max_item + 1, num_partitions), dtype=np.int64)
            for tag in dataset.endorser_index.tags():
                bundle = dataset.endorser_index.for_tag(tag)
                if bundle is None or not len(bundle):
                    continue
                rows = np.repeat(bundle.item_ids, np.diff(bundle.offsets))
                np.add.at(votes, (rows, user_map[bundle.taggers]), 1)
            endorsed = votes.sum(axis=1) > 0
            # argmax ties resolve to the lowest partition id — deterministic.
            item_map[endorsed] = np.argmax(votes[endorsed], axis=1)
        elif max_item >= 0:
            item_map[:] = 0
        return cls(num_partitions, item_map, user_map)

    @classmethod
    def hashed(cls, num_partitions: int) -> "CorpusPartitions":
        """A pure ``item_id % P`` layout (no graph structure consulted)."""
        return cls(num_partitions, np.zeros(0, dtype=np.int64),
                   np.zeros(0, dtype=np.int64))

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #

    def partition_of_items(self, item_ids: np.ndarray) -> np.ndarray:
        """Partition of every id in ``item_ids`` (vectorized, total).

        Mapped items read the layout; unmapped or out-of-range ids hash.
        """
        item_ids = np.asarray(item_ids, dtype=np.int64)
        if self.num_partitions == 1:
            return np.zeros(item_ids.shape[0], dtype=np.int64)
        with self._lock:
            item_map = self._item_map
        parts = item_ids % self.num_partitions
        if item_map.shape[0]:
            within = item_ids < item_map.shape[0]
            mapped = item_map[item_ids[within]]
            parts[within] = np.where(mapped >= 0, mapped, parts[within])
        return parts

    def partition_of_item(self, item_id: int) -> int:
        """Partition of one item id."""
        return int(self.partition_of_items(np.asarray([item_id]))[0])

    def partition_of_user(self, user_id: int) -> int:
        """Partition owning ``user_id``'s community (hash for unknown users)."""
        with self._lock:
            user_map = self._user_map
        if 0 <= user_id < user_map.shape[0]:
            return int(user_map[user_id])
        return int(user_id % self.num_partitions)

    def partition_sizes(self) -> List[int]:
        """Number of explicitly mapped items per partition."""
        sizes = [0] * self.num_partitions
        with self._lock:
            item_map = self._item_map
        for partition, count in zip(*np.unique(item_map[item_map >= 0],
                                               return_counts=True)):
            sizes[int(partition)] = int(count)
        return sizes

    # ------------------------------------------------------------------ #
    # Live-update routing
    # ------------------------------------------------------------------ #

    def route_items(self, items_to_users: Dict[int, int]) -> int:
        """Assign freshly written items to the partition owning their tagger.

        ``items_to_users`` maps each new item id to (one of) the users who
        just endorsed it — the delta overlay's view of the write.  Items the
        layout already covers keep their assignment (re-tagging an old item
        must not migrate it mid-serving); genuinely new ones join the
        partition of the endorsing user's community, so seeker locality
        survives live updates.  Returns the number of items newly routed.
        """
        if self.num_partitions == 1 or not items_to_users:
            return 0
        routed = 0
        with self._lock:
            item_map = self._item_map
            max_item = max(items_to_users)
            if max_item >= item_map.shape[0]:
                grown = np.full(max_item + 1, -1, dtype=np.int64)
                grown[:item_map.shape[0]] = item_map
                item_map = grown
            for item_id, user_id in sorted(items_to_users.items()):
                if item_id < 0:
                    continue
                if item_map[item_id] >= 0:
                    continue
                if 0 <= user_id < self._user_map.shape[0]:
                    item_map[item_id] = int(self._user_map[user_id])
                else:
                    item_map[item_id] = item_id % self.num_partitions
                routed += 1
            self._item_map = item_map
        return routed

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict view for stats endpoints and plan output."""
        return {
            "num_partitions": self.num_partitions,
            "mapped_items": int((self._item_map >= 0).sum()),
            "sizes": self.partition_sizes(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"CorpusPartitions(P={self.num_partitions}, "
                f"items={int((self._item_map >= 0).sum())})")


def _pack_communities(labels: Sequence[int], num_partitions: int) -> np.ndarray:
    """Pack communities onto partitions, largest community first.

    Greedy balanced packing: communities are ordered by (size desc, label
    asc) and each joins the currently least-loaded partition (ties to the
    lowest partition id), so the layout is deterministic given the labels.
    A community larger than ``ceil(num_users / P)`` (label propagation can
    collapse a well-mixed graph into one giant community) is first split
    into ascending-id chunks of that size — balance beats purity there,
    and correctness never depends on the assignment.
    """
    groups: Dict[int, List[int]] = {}
    for user, label in enumerate(labels):
        groups.setdefault(int(label), []).append(user)
    capacity = max(1, -(-len(labels) // num_partitions))
    chunks: List[List[int]] = []
    for label in sorted(groups):
        members = groups[label]
        for start in range(0, len(members), capacity):
            chunks.append(members[start:start + capacity])
    chunks.sort(key=lambda members: (-len(members), members[0]))
    loads = [0] * num_partitions
    user_map = np.zeros(len(labels), dtype=np.int64)
    for members in chunks:
        target = loads.index(min(loads))
        for user in members:
            user_map[user] = target
        loads[target] += len(members)
    return user_map
