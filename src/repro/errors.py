"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch a single base class.  The subclasses mirror the
major subsystems (graph, storage, query, workload, evaluation) and carry
enough context in their messages to diagnose misuse without a debugger.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """Raised when a configuration object is constructed with invalid values."""


class GraphError(ReproError):
    """Base class for social-graph related errors."""


class UnknownUserError(GraphError):
    """Raised when an operation references a user id not present in the graph."""

    def __init__(self, user_id: int, num_users: int) -> None:
        super().__init__(
            f"user id {user_id} is out of range for a graph with {num_users} users"
        )
        self.user_id = user_id
        self.num_users = num_users


class InvalidEdgeError(GraphError):
    """Raised when an edge is malformed (self loop, bad weight, unknown endpoint)."""


class StorageError(ReproError):
    """Base class for storage-engine errors."""


class UnknownItemError(StorageError):
    """Raised when an operation references an item id that was never registered."""

    def __init__(self, item_id: int) -> None:
        super().__init__(f"item id {item_id} is not present in the item store")
        self.item_id = item_id


class UnknownTagError(StorageError):
    """Raised when a tag is requested from an index that has never seen it."""

    def __init__(self, tag: str) -> None:
        super().__init__(f"tag {tag!r} is not present in the index")
        self.tag = tag


class DuplicateItemError(StorageError):
    """Raised when an item id is registered twice with conflicting payloads."""


class PersistenceError(StorageError):
    """Raised when a snapshot cannot be written or parsed."""


class QueryError(ReproError):
    """Base class for query-processing errors."""


class InvalidQueryError(QueryError):
    """Raised when a query is empty, has non-positive k, or malformed tags."""


class UnknownAlgorithmError(QueryError):
    """Raised when an algorithm name is not present in the registry."""

    def __init__(self, name: str, available: tuple) -> None:
        super().__init__(
            f"unknown top-k algorithm {name!r}; available: {', '.join(sorted(available))}"
        )
        self.name = name
        self.available = tuple(available)


class UnknownProximityError(QueryError):
    """Raised when a proximity-measure name is not present in the registry."""

    def __init__(self, name: str, available: tuple) -> None:
        super().__init__(
            f"unknown proximity measure {name!r}; available: {', '.join(sorted(available))}"
        )
        self.name = name
        self.available = tuple(available)


class WorkloadError(ReproError):
    """Raised when a synthetic workload cannot be generated as requested."""


class EvaluationError(ReproError):
    """Raised when an experiment or metric computation is misconfigured."""


class ServiceError(ReproError):
    """Raised when the query-serving subsystem is misused (e.g. closed service)."""
